"""Physical operators: a batch-at-a-time pipeline with a row-level shim.

A deliberately small engine — just enough to run the paper's evaluation
query (``SELECT * FROM LINEITEM ORDER BY L_ORDERKEY LIMIT k``) and
realistic variations end to end: scan → filter → top-k/sort → project →
limit.

Execution is batch-at-a-time (MonetDB/X100 style): operators exchange
:class:`~repro.rows.batch.RowBatch` chunks via ``batches()``, so
per-element Python overhead is paid once per batch instead of once per
row, and batch consumers (the histogram top-k's vectorized admission
filter, :class:`VectorizedTopK`) can test a whole key column at once.
The historical Volcano surface survives unchanged: every operator also
exposes ``rows()``, which for batch-native operators is a thin
flattening adapter over ``batches()``, and for row-native operators is
the implementation that the default ``batches()`` chunks.  Either API
can be called on any operator; both yield identical row sequences.

Every operator also exposes its output ``schema`` and ``explain()`` for
plan display.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.baselines.optimized_topk import OptimizedMergeSortTopK
from repro.baselines.priority_queue_topk import PriorityQueueTopK
from repro.baselines.traditional_topk import TraditionalMergeSortTopK
from repro.core.topk import HistogramTopK
from repro.errors import ConfigurationError
from repro.obs.trace import NULL_TRACER
from repro.rows.batch import (
    DEFAULT_BATCH_ROWS,
    RowBatch,
    batches_from_rows,
    flatten,
    numeric_key_column,
)
from repro.rows.schema import Column, ColumnType, Schema
from repro.rows.sortspec import SortSpec
from repro.storage.spill import SpillManager
from repro.storage.stats import OperatorStats

try:  # numpy backs the vectorized lowering; the engine runs without it.
    import numpy as np
except ImportError:  # pragma: no cover - the CI image always has numpy
    np = None


class Table:
    """A named, registered input table.

    Args:
        name: Table name used in SQL.
        schema: Row schema.
        source: A list of rows, or a zero-argument callable returning a
            fresh row iterator (for large/streaming inputs).
        row_count: Optional row-count estimate for planning/reporting.
        sorted_by: Optional physical sort order of the stored rows
            (ascending column names).  The planner exploits a shared
            prefix with a query's ORDER BY clause (Section 4.2): a fully
            covered ORDER BY becomes a plain scan+limit; a shared prefix
            enables segmented execution.
        version: Monotonic content version.  The session bumps it when a
            table is re-registered under the same name; caches key on
            ``(name, version)`` so entries for replaced data never serve.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        source: Sequence[tuple] | Callable[[], Iterable[tuple]],
        row_count: int | None = None,
        sorted_by: Sequence[str] | None = None,
        version: int = 0,
    ):
        self.name = name
        self.schema = schema
        self._source = source
        self.version = version
        self.sorted_by = tuple(sorted_by) if sorted_by else ()
        for column in self.sorted_by:
            schema.index_of(column)  # validates the declaration
        if row_count is not None:
            self.row_count = row_count
        elif hasattr(source, "__len__"):
            self.row_count = len(source)  # type: ignore[arg-type]
        else:
            self.row_count = None

    def rows(self) -> Iterator[tuple]:
        """A fresh iterator over the table's rows.

        Callable (streaming) sources start with ``row_count = None``;
        the count is learned the first time it becomes observable —
        immediately when the callable returns a sized container, or on
        the first full scan otherwise — so the planner and admission
        control stop flying blind after one pass.
        """
        if callable(self._source):
            produced = self._source()
            if self.row_count is None and hasattr(produced, "__len__"):
                self.row_count = len(produced)
            if self.row_count is None:
                return self._counting(iter(produced))
            return iter(produced)
        return iter(self._source)

    def _counting(self, iterator: Iterator[tuple]) -> Iterator[tuple]:
        count = 0
        for row in iterator:
            count += 1
            yield row
        self.row_count = count

    def batches(self,
                batch_rows: int = DEFAULT_BATCH_ROWS) -> Iterator[RowBatch]:
        """A fresh batch iterator over the table's rows.

        Sequence sources are chunked by slicing (no per-row Python
        work); callable sources stream through :meth:`rows`, so they get
        the same row-count learning.
        """
        if callable(self._source):
            return batches_from_rows(self.rows(), self.schema, batch_rows)
        return batches_from_rows(self._source, self.schema, batch_rows)


class Operator:
    """Base class for physical operators.

    Subclasses implement whichever of ``rows()`` / ``batches()`` is
    natural for them and inherit the other: the base ``batches()``
    chunks ``rows()``, and batch-native operators define ``rows()`` as
    ``flatten(self.batches())``.
    """

    schema: Schema
    #: Rows per exchanged batch (uniform across the pipeline).
    batch_rows: int = DEFAULT_BATCH_ROWS

    def rows(self) -> Iterator[tuple]:
        """Return a fresh iterator over the operator's output."""
        raise NotImplementedError

    def batches(self) -> Iterator[RowBatch]:
        """Return a fresh batch iterator over the operator's output.

        Flattened, the batch stream equals ``rows()`` row for row.
        """
        return batches_from_rows(self.rows(), self.schema, self.batch_rows)

    def label(self) -> str:
        """One-line description for EXPLAIN output."""
        return type(self).__name__

    def children(self) -> list["Operator"]:
        """Child operators, outermost first."""
        return []

    def explain(self, depth: int = 0) -> str:
        """Render this operator subtree as indented text.

        Nodes chosen by the cost-based planner carry a
        ``PlanDecision`` (see :mod:`repro.engine.planner`); its costed
        summary renders indented under the node's label.
        """
        lines = ["  " * depth + "-> " + self.label()]
        decision = self.__dict__.get("decision")
        if decision is not None:
            indent = "  " * depth + "     "
            lines.extend(indent + line
                         for line in decision.describe().splitlines())
        for child in self.children():
            lines.append(child.explain(depth + 1))
        return "\n".join(lines)


class TableScan(Operator):
    """Full scan of a registered table."""

    def __init__(self, table: Table):
        self.table = table
        self.schema = table.schema

    def rows(self) -> Iterator[tuple]:
        return self.table.rows()

    def batches(self) -> Iterator[RowBatch]:
        return self.table.batches(self.batch_rows)

    def label(self) -> str:
        count = (f" (~{self.table.row_count} rows)"
                 if self.table.row_count is not None else "")
        return f"TableScan {self.table.name}{count}"


class Filter(Operator):
    """Row filter on a compiled predicate."""

    def __init__(self, child: Operator,
                 predicate: Callable[[tuple], bool],
                 description: str = "<predicate>"):
        self.child = child
        self.schema = child.schema
        self.predicate = predicate
        self.description = description

    def rows(self) -> Iterator[tuple]:
        return flatten(self.batches())

    def batches(self) -> Iterator[RowBatch]:
        predicate = self.predicate
        for batch in self.child.batches():
            filtered = batch.filter(predicate)
            if len(filtered):
                yield filtered

    def label(self) -> str:
        return f"Filter [{self.description}]"

    def children(self) -> list[Operator]:
        return [self.child]


class Project(Operator):
    """Column projection."""

    def __init__(self, child: Operator, columns: Sequence[str]):
        self.child = child
        self.columns = tuple(columns)
        self.schema = child.schema.project(self.columns)
        self._projector = child.schema.projector(self.columns)

    def rows(self) -> Iterator[tuple]:
        return flatten(self.batches())

    def batches(self) -> Iterator[RowBatch]:
        projector = self._projector
        schema = self.schema
        for batch in self.child.batches():
            yield batch.map(projector, schema)

    def label(self) -> str:
        return f"Project [{', '.join(self.columns)}]"

    def children(self) -> list[Operator]:
        return [self.child]


class Limit(Operator):
    """Plain LIMIT/OFFSET without ordering."""

    def __init__(self, child: Operator, limit: int | None, offset: int = 0):
        if limit is not None and limit < 0:
            raise ConfigurationError("LIMIT must be non-negative")
        if offset < 0:
            raise ConfigurationError("OFFSET must be non-negative")
        self.child = child
        self.schema = child.schema
        self.limit = limit
        self.offset = offset

    def rows(self) -> Iterator[tuple]:
        return flatten(self.batches())

    def batches(self) -> Iterator[RowBatch]:
        produced = 0
        skipped = 0
        for batch in self.child.batches():
            rows = batch.rows
            start = 0
            if skipped < self.offset:
                start = min(self.offset - skipped, len(rows))
                skipped += start
                if start >= len(rows):
                    continue
            end = len(rows)
            if self.limit is not None:
                end = min(end, start + self.limit - produced)
            produced += end - start
            if start == 0 and end == len(rows):
                yield batch  # untouched: pass the child's batch through
            elif end > start:
                yield RowBatch(self.schema, rows[start:end])
            if self.limit is not None and produced >= self.limit:
                return

    def label(self) -> str:
        return f"Limit {self.limit} offset {self.offset}"

    def children(self) -> list[Operator]:
        return [self.child]


class InMemorySort(Operator):
    """Full sort without a limit (used when a query has no LIMIT)."""

    def __init__(self, child: Operator, sort_spec: SortSpec):
        self.child = child
        self.schema = child.schema
        self.sort_spec = sort_spec

    def rows(self) -> Iterator[tuple]:
        return iter(sorted(self.child.rows(), key=self.sort_spec.key))

    def label(self) -> str:
        return f"Sort [{self.sort_spec!r}]"

    def children(self) -> list[Operator]:
        return [self.child]


class SharedCutoffBound:
    """A mutable bound shared between a top-k consumer and a pushed-down
    pre-join filter.

    The top-k operator publishes every refinement of its admission
    cutoff; the :class:`CutoffPushdownFilter` sitting below the join on
    the sort-key side reads the latest bound as input flows through it.
    The pipeline is single-threaded pull, so publication and observation
    interleave deterministically.  ``publish`` only ever tightens: a
    bound, once established, never loosens (mirroring
    :class:`~repro.core.cutoff.CutoffFilter` monotonicity).
    """

    __slots__ = ("key", "publications")

    def __init__(self):
        self.key = None
        self.publications = 0

    def publish(self, key) -> None:
        if key is None:
            return
        if self.key is None or key < self.key:
            self.key = key
            self.publications += 1


class CutoffPushdownFilter(Operator):
    """Pre-join input filter driven by a consumer's live top-k cutoff.

    Sits below a join on the side that supplies every ORDER BY column
    and drops rows whose sort key is strictly above the shared bound —
    exactly the rows the downstream top-k's arrival filter would reject
    (ties are retained, matching
    :meth:`~repro.core.cutoff.CutoffFilter.eliminate`).  Until the
    consumer establishes a bound, everything passes.  ``key_of`` must
    produce keys in the consumer's active key space (normalized tuples,
    encoded bytes, or normalized floats, depending on the chosen top-k
    lowering).
    """

    def __init__(
        self,
        child: Operator,
        key_of: Callable[[tuple], Any],
        bound: SharedCutoffBound,
        description: str = "",
    ):
        self.child = child
        self.schema = child.schema
        self.key_of = key_of
        self.bound = bound
        self.description = description
        self.stats = OperatorStats()
        #: Rows that entered the filter on the most recent execution.
        self.rows_in = 0
        #: Rows dropped by the pushed-down cutoff.
        self.rows_dropped = 0

    def rows(self) -> Iterator[tuple]:
        return flatten(self.batches())

    def batches(self) -> Iterator[RowBatch]:
        self.stats = stats = OperatorStats()
        self.rows_in = 0
        self.rows_dropped = 0
        return self._filtered(stats)

    def _filtered(self, stats: OperatorStats) -> Iterator[RowBatch]:
        key_of = self.key_of
        bound = self.bound
        for batch in self.child.batches():
            rows = batch.rows
            self.rows_in += len(rows)
            stats.rows_consumed += len(rows)
            # The bound cannot change mid-batch (the consumer only runs
            # after this batch is yielded), so one read suffices.
            cutoff = bound.key
            if cutoff is None:
                yield batch
                continue
            stats.cutoff_comparisons += len(rows)
            kept = [row for row in rows if not key_of(row) > cutoff]
            dropped = len(rows) - len(kept)
            if dropped:
                self.rows_dropped += dropped
                stats.rows_eliminated_on_arrival += dropped
                if kept:
                    yield RowBatch(self.schema, kept)
            else:
                yield batch

    def analyze_details(self) -> dict:
        return {
            "pushdown_rows_in": self.rows_in,
            "pushdown_rows_dropped": self.rows_dropped,
            "pushdown_refinements": self.bound.publications,
        }

    def label(self) -> str:
        suffix = f" [{self.description}]" if self.description else ""
        return f"CutoffPushdownFilter{suffix}"

    def children(self) -> list[Operator]:
        return [self.child]


class _JoinBase(Operator):
    """Shared surface of the two equi-join physical operators.

    Output rows are ``left_row + right_row`` under ``schema`` (built by
    the planner; column names de-duplicated there).  SQL semantics:
    ``NULL`` join keys never match, and a LEFT join pads the right
    columns of unmatched (or NULL-key) left rows with ``None``.
    """

    JOIN_TYPES = ("inner", "left")

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_index: int,
        right_index: int,
        join_type: str,
        schema: Schema,
        tracer=None,
    ):
        if join_type not in self.JOIN_TYPES:
            raise ConfigurationError(
                f"unknown join type {join_type!r}; "
                f"choose from {self.JOIN_TYPES}")
        self.left = left
        self.right = right
        self.left_index = left_index
        self.right_index = right_index
        self.join_type = join_type
        self.schema = schema
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = OperatorStats()
        #: Rows read from the right (build) input on the last execution.
        self.rows_build = 0
        #: Rows read from the left (probe) input on the last execution.
        self.rows_probe = 0
        #: Matched output rows (excludes LEFT-join padding rows).
        self.rows_matched = 0

    def _reset(self) -> OperatorStats:
        self.stats = OperatorStats()
        self.rows_build = 0
        self.rows_probe = 0
        self.rows_matched = 0
        return self.stats

    def _pad(self) -> tuple:
        return (None,) * len(self.right.schema.columns)

    def analyze_details(self) -> dict:
        return {
            "join_rows_build": self.rows_build,
            "join_rows_probe": self.rows_probe,
            "join_rows_matched": self.rows_matched,
        }

    def label(self) -> str:
        on = (f"{self.left.schema.names[self.left_index]} = "
              f"{self.right.schema.names[self.right_index]}")
        return f"{type(self).__name__} {self.join_type} on {on}"

    def children(self) -> list[Operator]:
        return [self.left, self.right]


class HashJoin(_JoinBase):
    """Hash equi-join: build a table on the right input, stream the left.

    Emission order is probe order — for each left row, its matches in
    right-input order — which makes the output deterministic and
    independent of hashing.
    """

    def rows(self) -> Iterator[tuple]:
        stats = self._reset()
        return self._joined(stats)

    def _joined(self, stats: OperatorStats) -> Iterator[tuple]:
        left_index = self.left_index
        right_index = self.right_index
        left_outer = self.join_type == "left"
        with self.tracer.span("join.hash.build"):
            table: dict[Any, list[tuple]] = {}
            build = 0
            for row in self.right.rows():
                build += 1
                key = row[right_index]
                if key is None:
                    continue
                bucket = table.get(key)
                if bucket is None:
                    table[key] = [row]
                else:
                    bucket.append(row)
            self.rows_build = build
            stats.rows_consumed += build
        pad = self._pad()
        with self.tracer.span("join.hash.probe"):
            for row in self.left.rows():
                self.rows_probe += 1
                stats.rows_consumed += 1
                key = row[left_index]
                matches = table.get(key) if key is not None else None
                if matches:
                    self.rows_matched += len(matches)
                    for match in matches:
                        stats.rows_output += 1
                        yield row + match
                elif left_outer:
                    stats.rows_output += 1
                    yield row + pad


class SortMergeJoin(_JoinBase):
    """Sort-merge equi-join: sort both inputs on the key, then zip.

    Both sorts are stable, so within one join-key value the output is
    left-input-order × right-input-order — the same *multiset* as
    :class:`HashJoin` (overall emission order differs: key order here,
    probe order there).
    """

    def rows(self) -> Iterator[tuple]:
        stats = self._reset()
        return self._joined(stats)

    def _joined(self, stats: OperatorStats) -> Iterator[tuple]:
        left_index = self.left_index
        right_index = self.right_index
        left_outer = self.join_type == "left"
        with self.tracer.span("join.merge.sort"):
            left_rows = list(self.left.rows())
            right_rows = list(self.right.rows())
            self.rows_probe = len(left_rows)
            self.rows_build = len(right_rows)
            stats.rows_consumed += len(left_rows) + len(right_rows)
            null_left = [r for r in left_rows if r[left_index] is None]
            keyed_left = sorted(
                (r for r in left_rows if r[left_index] is not None),
                key=lambda r: r[left_index])
            keyed_right = sorted(
                (r for r in right_rows if r[right_index] is not None),
                key=lambda r: r[right_index])
            stats.sort_comparisons += len(keyed_left) + len(keyed_right)
        pad = self._pad()
        with self.tracer.span("join.merge.zip"):
            j = 0
            i = 0
            total_right = len(keyed_right)
            while i < len(keyed_left):
                key = keyed_left[i][left_index]
                i_end = i
                while i_end < len(keyed_left) \
                        and keyed_left[i_end][left_index] == key:
                    i_end += 1
                while j < total_right \
                        and keyed_right[j][right_index] < key:
                    j += 1
                j_end = j
                while j_end < total_right \
                        and keyed_right[j_end][right_index] == key:
                    j_end += 1
                if j_end > j:
                    matches = keyed_right[j:j_end]
                    self.rows_matched += (i_end - i) * len(matches)
                    for left_row in keyed_left[i:i_end]:
                        for right_row in matches:
                            stats.rows_output += 1
                            yield left_row + right_row
                elif left_outer:
                    for left_row in keyed_left[i:i_end]:
                        stats.rows_output += 1
                        yield left_row + pad
                i = i_end
                j = j_end
            if left_outer:
                for left_row in null_left:
                    stats.rows_output += 1
                    yield left_row + pad


#: Aggregate function registry for :class:`GroupedAggregate`.
AGGREGATE_FUNCS = ("COUNT", "SUM", "MIN", "MAX", "AVG")


class GroupedAggregate(Operator):
    """In-memory hash aggregation for GROUP BY / aggregate queries.

    Standard SQL semantics: aggregates skip NULL inputs (``COUNT(*)``
    counts rows), an all-NULL group yields ``None`` for
    SUM/MIN/MAX/AVG and ``0`` for COUNT, NULL group keys form one
    group, and a global aggregate (no GROUP BY) emits exactly one row
    even on empty input.  Output rows are emitted in group-key order
    (NULLs last) so the result is deterministic without an ORDER BY.

    ``select`` fixes the output column order: each item is either a
    group-by column name or the canonical name of an aggregate
    (``SUM(V)``, ``COUNT(*)``).
    """

    def __init__(
        self,
        child: Operator,
        group_columns: Sequence[str],
        aggregates: Sequence,  # of repro.engine.sql.Aggregate
        select: Sequence[str],
    ):
        self.child = child
        self.group_columns = tuple(group_columns)
        self.aggregates = tuple(aggregates)
        self.select = tuple(select)
        self._group_indexes = tuple(child.schema.index_of(name)
                                    for name in self.group_columns)
        self._agg_indexes = tuple(
            None if agg.column is None
            else child.schema.index_of(child.schema.resolve(agg.column))
            for agg in self.aggregates)
        self.schema = self._output_schema(child.schema)
        self.stats = OperatorStats()
        #: Distinct groups produced on the most recent execution.
        self.groups_out = 0

    def _output_schema(self, child_schema: Schema) -> Schema:
        by_name: dict[str, Column] = {}
        for name in self.group_columns:
            by_name[name] = child_schema.column(name)
        for agg, index in zip(self.aggregates, self._agg_indexes):
            if agg.func == "COUNT":
                column = Column(agg.name, ColumnType.INT64, nullable=False)
            elif agg.func == "AVG":
                column = Column(agg.name, ColumnType.FLOAT64, nullable=True)
            else:  # SUM / MIN / MAX keep the source type, made nullable
                source = child_schema.columns[index]
                column = Column(agg.name, source.type, nullable=True)
            by_name[agg.name] = column
        return Schema(by_name[name] for name in self.select)

    def rows(self) -> Iterator[tuple]:
        self.stats = OperatorStats()
        self.groups_out = 0
        return self._aggregated(self.stats)

    def _aggregated(self, stats: OperatorStats) -> Iterator[tuple]:
        group_indexes = self._group_indexes
        specs = tuple((agg.func, index)
                      for agg, index in zip(self.aggregates,
                                            self._agg_indexes))
        # Accumulator per aggregate: COUNT → int; SUM → number | None;
        # MIN/MAX → value | None; AVG → [total, count].
        groups: dict[tuple, list] = {}
        for row in self.child.rows():
            stats.rows_consumed += 1
            key = tuple(row[i] for i in group_indexes)
            accs = groups.get(key)
            if accs is None:
                accs = groups[key] = [
                    [0.0, 0] if func == "AVG"
                    else (0 if func == "COUNT" else None)
                    for func, _ in specs]
            for pos, (func, index) in enumerate(specs):
                if func == "COUNT":
                    if index is None or row[index] is not None:
                        accs[pos] += 1
                    continue
                value = row[index]
                if value is None:
                    continue
                if func == "AVG":
                    accs[pos][0] += value
                    accs[pos][1] += 1
                elif accs[pos] is None:
                    accs[pos] = value
                elif func == "SUM":
                    accs[pos] = accs[pos] + value
                elif func == "MIN":
                    if value < accs[pos]:
                        accs[pos] = value
                else:  # MAX
                    if value > accs[pos]:
                        accs[pos] = value
        if not groups and not self.group_columns:
            # Global aggregate over an empty input still emits one row.
            groups[()] = [[0.0, 0] if func == "AVG"
                          else (0 if func == "COUNT" else None)
                          for func, _ in specs]
        group_names = {name: pos
                       for pos, name in enumerate(self.group_columns)}
        agg_names = {agg.name: pos
                     for pos, agg in enumerate(self.aggregates)}
        picks = tuple(
            (True, group_names[name]) if name in group_names
            else (False, agg_names[name])
            for name in self.select)
        # NULL group keys sort last within each column, like ORDER BY.
        ordered = sorted(
            groups.items(),
            key=lambda item: tuple((v is None, v) for v in item[0]))
        self.groups_out = len(ordered)
        for key, accs in ordered:
            finals = [
                (acc[0] / acc[1] if acc[1] else None)
                if func == "AVG" else acc
                for (func, _), acc in zip(specs, accs)]
            stats.rows_output += 1
            yield tuple(key[pos] if is_group else finals[pos]
                        for is_group, pos in picks)

    def analyze_details(self) -> dict:
        return {"aggregate_groups_out": self.groups_out}

    def label(self) -> str:
        keys = ", ".join(self.group_columns) or "<global>"
        aggs = ", ".join(agg.name for agg in self.aggregates)
        return f"GroupedAggregate by [{keys}] agg [{aggs}]"

    def children(self) -> list[Operator]:
        return [self.child]


#: Algorithm registry for the TopK physical operator.
TOPK_ALGORITHMS = ("histogram", "optimized", "traditional", "priority_queue")


class SegmentedTopKOperator(Operator):
    """Physical segmented top-k for partially sorted inputs (Section 4.2).

    The input arrives clustered (and ordered) on ``segment_columns`` — a
    prefix of the query's ORDER BY — so the operator sorts segment by
    segment on the remaining columns and stops after ``k`` rows; later
    segments are never sorted or spilled.
    """

    def __init__(
        self,
        child: Operator,
        segment_columns: Sequence[str],
        remainder_spec: SortSpec | None,
        k: int,
        memory_rows: int = 100_000,
        spill_manager: SpillManager | None = None,
    ):
        self.child = child
        self.schema = child.schema
        self.segment_columns = tuple(segment_columns)
        indexes = tuple(child.schema.index_of(name)
                        for name in self.segment_columns)
        if len(indexes) == 1:
            index = indexes[0]
            self._segment_key = lambda row: row[index]
        else:
            self._segment_key = lambda row: tuple(row[i] for i in indexes)
        self.remainder_spec = remainder_spec
        self.k = k
        self.memory_rows = memory_rows
        self.spill_manager = spill_manager
        self.stats = OperatorStats()

    def rows(self) -> Iterator[tuple]:
        from repro.extensions.segmented import SegmentedTopK

        self.stats = OperatorStats()
        remainder = (self.remainder_spec.key if self.remainder_spec
                     else (lambda _row: 0))
        operator = SegmentedTopK(
            segment_key=self._segment_key,
            remainder_key=remainder,
            k=self.k,
            memory_rows=self.memory_rows,
            spill_manager=self.spill_manager,
            stats=self.stats,
        )
        return operator.execute(self.child.rows())

    def label(self) -> str:
        remainder = (repr(self.remainder_spec) if self.remainder_spec
                     else "-")
        return (f"SegmentedTopK k={self.k} "
                f"segments=({', '.join(self.segment_columns)}) "
                f"remainder={remainder}")

    def children(self) -> list["Operator"]:
        return [self.child]


class GroupedTopKOperator(Operator):
    """Physical ``LIMIT k PER <column>`` (Section 4.3 grouped top-k).

    Keeps the top ``k`` rows within each distinct value of the group
    column, each group's rows in sort order, groups contiguous.
    """

    def __init__(
        self,
        child: Operator,
        sort_spec: SortSpec,
        group_column: str,
        k: int,
        memory_rows: int = 100_000,
        spill_manager: SpillManager | None = None,
        key_encoding: str = "auto",
    ):
        if key_encoding not in ("auto", "ovc", "tuple"):
            raise ConfigurationError(
                f"unknown key encoding {key_encoding!r} "
                "(expected 'auto', 'ovc' or 'tuple')")
        self.child = child
        self.schema = child.schema
        self.sort_spec = sort_spec
        self.group_column = group_column
        self.group_index = child.schema.index_of(group_column)
        self.k = k
        self.memory_rows = memory_rows
        self.spill_manager = spill_manager
        self.key_encoding = key_encoding
        # The binary composite-key lowering (group bytes ‖ sort-key
        # bytes) engages when both the group column and the sort spec
        # compile to order-preserving byte encoders.  ``"auto"`` falls
        # back to tuple keys when they don't; ``"ovc"`` insists.
        self.group_encoder = None
        self.value_encoder = None
        if key_encoding != "tuple":
            from repro.sorting.keycodec import compile_keycodec

            group_codec = compile_keycodec(
                SortSpec(child.schema, [group_column]))
            value_codec = compile_keycodec(sort_spec)
            if group_codec is not None and value_codec is not None:
                self.group_encoder = group_codec.encode
                self.value_encoder = value_codec.encode
            elif key_encoding == "ovc":
                raise ConfigurationError(
                    "key_encoding='ovc' requires binary key encoders for "
                    "the group column and every sort column")
        self.stats = OperatorStats()

    def rows(self) -> Iterator[tuple]:
        from repro.extensions.grouped import GroupedTopK

        self.stats = OperatorStats()
        index = self.group_index
        operator = GroupedTopK(
            group_key=lambda row: row[index],
            sort_key=self.sort_spec,
            k=self.k,
            memory_rows=self.memory_rows,
            spill_manager=self.spill_manager,
            stats=self.stats,
            group_encoder=self.group_encoder,
            value_encoder=self.value_encoder,
        )
        return (row for _group, row in operator.execute(self.child.rows()))

    def label(self) -> str:
        encoding = "ovc" if self.group_encoder is not None else "tuple"
        return (f"GroupedTopK k={self.k} per {self.group_column} "
                f"[{self.sort_spec!r}] encoding={encoding}")

    def children(self) -> list["Operator"]:
        return [self.child]


class TopK(Operator):
    """Physical top-k: ORDER BY + LIMIT [+ OFFSET], algorithm-pluggable.

    The default algorithm is the paper's adaptive histogram operator, which
    subsumes the in-memory priority queue; the baselines remain selectable
    for comparison (``algorithm=`` in the session, or per query via the
    planner).
    """

    def __init__(
        self,
        child: Operator,
        sort_spec: SortSpec,
        k: int,
        offset: int = 0,
        algorithm: str = "histogram",
        memory_rows: int = 100_000,
        spill_manager: SpillManager | None = None,
        algorithm_options: dict | None = None,
        cutoff_seed: Any = None,
        tracer=None,
        execution: str = "batch",
    ):
        if algorithm not in TOPK_ALGORITHMS:
            raise ConfigurationError(
                f"unknown top-k algorithm {algorithm!r}; "
                f"choose from {TOPK_ALGORITHMS}")
        if execution not in ("batch", "row"):
            raise ConfigurationError(
                f"unknown execution mode {execution!r} "
                "(expected 'batch' or 'row')")
        self.child = child
        self.schema = child.schema
        self.sort_spec = sort_spec
        self.k = k
        self.offset = offset
        self.algorithm = algorithm
        self.memory_rows = memory_rows
        self.spill_manager = spill_manager
        self.algorithm_options = algorithm_options or {}
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: ``"batch"`` drains the child's batch surface (the default);
        #: ``"row"`` pins the Volcano row-at-a-time path — kept as a
        #: costed planner candidate and an ablation knob.
        self.execution = execution
        #: Only the histogram algorithm understands cutoff seeding; the
        #: seed is silently ignored for the baselines.
        self.cutoff_seed = cutoff_seed
        #: The planner's costed decision for this operator, when the
        #: cost-based planner produced it (``None`` for hand-built
        #: plans).  Read by ``EXPLAIN`` / ``EXPLAIN ANALYZE``.
        self.decision = None
        #: Optional per-bucket sink harvesting the run-generation
        #: histogram into the statistics catalog (histogram algorithm
        #: only; attached by the session when a catalog is present).
        self.histogram_sink = None
        #: Optional observer of admission-bound refinements (histogram
        #: algorithm only; attached by the planner when a cutoff is
        #: pushed below a join — see :class:`CutoffPushdownFilter`).
        self.cutoff_listener = None
        #: The algorithm instance of the most recent ``rows()`` call —
        #: lets callers read execution artifacts (``final_cutoff``,
        #: ``cutoff_filter``, ``runs``) after materializing the output.
        self.last_impl = None
        self.stats = OperatorStats()

    def _make_impl(self):
        options = dict(self.algorithm_options)
        self.stats = OperatorStats()
        common = dict(k=self.k, offset=self.offset, stats=self.stats)
        if self.algorithm == "priority_queue":
            return PriorityQueueTopK(
                self.sort_spec, memory_rows=None, **common, **options)
        manager = self.spill_manager or SpillManager()
        if self.tracer.enabled:
            manager.tracer = self.tracer
        common["memory_rows"] = self.memory_rows
        common["spill_manager"] = manager
        if self.algorithm == "histogram":
            if self.cutoff_seed is not None:
                options.setdefault("cutoff_seed", self.cutoff_seed)
            if self.histogram_sink is not None:
                options.setdefault("histogram_sink", self.histogram_sink)
            if self.cutoff_listener is not None:
                options.setdefault("cutoff_listener", self.cutoff_listener)
            return HistogramTopK(self.sort_spec, tracer=self.tracer,
                                 **common, **options)
        if self.algorithm == "optimized":
            return OptimizedMergeSortTopK(self.sort_spec, **common, **options)
        return TraditionalMergeSortTopK(self.sort_spec, **common, **options)

    def rows(self) -> Iterator[tuple]:
        impl = self._make_impl()
        self.last_impl = impl
        if self.execution == "row":
            return impl.execute(self.child.rows())
        return impl.execute_batches(self.child.batches())

    def label(self) -> str:
        extra = "" if self.execution == "batch" \
            else f" execution={self.execution}"
        return (f"TopK k={self.k} offset={self.offset} "
                f"[{self.sort_spec!r}] algorithm={self.algorithm}{extra}")

    def children(self) -> list[Operator]:
        return [self.child]


class VectorizedTopK(TopK):
    """Top-k lowered onto the vectorized numpy kernels.

    The planner substitutes this operator for a plain histogram
    :class:`TopK` when the ORDER BY key is a single non-nullable numeric
    column: each input batch's key column is extracted once as a float64
    array and fed to
    :class:`~repro.vectorized.topk.VectorizedHistogramTopK` together with
    late-binding row ids into a payload store.  Batches are pre-filtered
    against the kernel's live cutoff before their rows are stored, so the
    payload store holds only rows that were still candidates on arrival
    (late materialization), and the kernel itself only ever moves numpy
    arrays.

    The lowering is exact: output rows and spill accounting match the row
    engine (see ``tests/test_batch_lowering.py``).
    """

    def __init__(
        self,
        child: Operator,
        sort_spec: SortSpec,
        k: int,
        offset: int = 0,
        memory_rows: int = 100_000,
        buckets_per_run: int = 50,
        tracer=None,
        store=None,
    ):
        super().__init__(child, sort_spec, k, offset=offset,
                         algorithm="histogram", memory_rows=memory_rows,
                         spill_manager=None, tracer=tracer)
        key = numeric_key_column(sort_spec)
        if key is None:
            raise ConfigurationError(
                "VectorizedTopK requires numpy and a single non-nullable "
                "numeric ORDER BY column")
        self.key_index, self.negate = key
        self.buckets_per_run = buckets_per_run
        #: Optional :class:`~repro.vectorized.runs.VectorRunStore` — lets
        #: callers route spilled runs to real storage
        #: (:class:`~repro.vectorized.runs.VectorRunDisk`); lifecycle
        #: (``close``) stays with the caller.
        self.run_store = store

    def _batch_keys(self, batch: RowBatch):
        keys = batch.key_array(self.key_index)
        if keys is None:
            index = self.key_index
            keys = np.fromiter((float(row[index]) for row in batch.rows),
                               dtype=np.float64, count=len(batch.rows))
        return -keys if self.negate else keys

    def rows(self) -> Iterator[tuple]:
        from repro.vectorized.topk import VectorizedHistogramTopK

        self.stats = OperatorStats()
        impl = VectorizedHistogramTopK(
            k=self.k,
            memory_rows=self.memory_rows,
            buckets_per_run=self.buckets_per_run,
            offset=self.offset,
            store=self.run_store,
            stats=self.stats,
            tracer=self.tracer,
            histogram_sink=self.histogram_sink,
            cutoff_listener=self.cutoff_listener,
        )
        self.last_impl = impl
        store: list[tuple] = []
        stats = self.stats

        def chunks():
            for batch in self.child.batches():
                keys = self._batch_keys(batch)
                rows = batch.rows
                # Arrival-side pre-filter (Algorithm 1 line 4) against
                # the kernel's live cutoff: rows that are already out of
                # contention are never stored.  The kernel would drop
                # their keys anyway; doing it here keeps the payload
                # store proportional to surviving rows.  Eliminations are
                # charged at this site so counters match an unfiltered
                # feed.
                cutoff = impl.live_cutoff
                if cutoff is not None:
                    mask = keys <= cutoff
                    kept = int(mask.sum())
                    dropped = len(rows) - kept
                    if dropped:
                        stats.rows_consumed += dropped
                        stats.cutoff_comparisons += dropped
                        stats.rows_eliminated_on_arrival += dropped
                        keys = keys[mask]
                        rows = [rows[i] for i in np.flatnonzero(mask)]
                if not rows:
                    continue
                ids = np.arange(len(store), len(store) + len(rows),
                                dtype=np.int64)
                store.extend(rows)
                yield keys, ids

        _keys, out_ids = impl.execute(chunks())
        # ``out_ids`` is None only when the input was empty (the kernel
        # never saw a chunk, so it cannot know ids were intended).
        output = ([store[int(i)] for i in out_ids]
                  if out_ids is not None else [])
        del store
        return iter(output)

    def label(self) -> str:
        return (f"VectorizedTopK k={self.k} offset={self.offset} "
                f"[{self.sort_spec!r}] key_column="
                f"{self.schema.names[self.key_index]}")
