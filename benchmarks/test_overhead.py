"""Benchmark: Section 5.5 — cutoff-filter overhead on an adversarial input.

A strictly descending input sharpens the cutoff key continuously while
eliminating nothing, so any time difference between the operator with and
without the histogram logic is pure filter overhead.  The paper measures
~3%; here the two variants are timed by pytest-benchmark directly (compare
the two benchmark rows) and the structural facts are asserted.
"""

from conftest import bench_workload
from repro.core.policies import NoHistogramPolicy, TargetBucketsPolicy
from repro.datagen.distributions import DESCENDING
from repro.experiments.harness import run_algorithm


def _adversarial_workload():
    return bench_workload(input_rows=6_000, distribution=DESCENDING)


def test_overhead_with_filter(benchmark):
    workload = _adversarial_workload()
    result = benchmark(
        run_algorithm, "histogram", workload,
        sizing_policy=TargetBucketsPolicy(capped=False))
    # Adversarial: the filter sharpened but eliminated nothing (the
    # spill count exceeds the input only through fan-in-limited
    # intermediate merge re-writes).
    assert result.stats.rows_eliminated == 0
    assert result.rows_spilled >= workload.input_rows


def test_overhead_without_filter(benchmark):
    workload = _adversarial_workload()
    result = benchmark(
        run_algorithm, "histogram", workload,
        sizing_policy=NoHistogramPolicy())
    assert result.rows_spilled >= workload.input_rows


def test_overhead_same_io_either_way(benchmark):
    """The filter changes CPU only: storage traffic is identical."""

    def run():
        workload = _adversarial_workload()
        with_filter = run_algorithm(
            "histogram", workload,
            sizing_policy=TargetBucketsPolicy(capped=False))
        without = run_algorithm("histogram", workload,
                                sizing_policy=NoHistogramPolicy())
        return with_filter, without

    with_filter, without = benchmark(run)
    assert with_filter.rows_spilled == without.rows_spilled
    assert with_filter.stats.io.bytes_written \
        == without.stats.io.bytes_written
