"""Benchmark: the Section 2.1 strategy bake-off.

Histogram filtering vs late materialization vs range partitioning vs
materialize-with-zone-maps, on the same workload, under the disaggregated
storage cost model.  The paper's qualitative ranking must hold:

* late materialization drowns in random reads,
* zone maps pay full materialization and prune nothing on shuffled input,
* range partitioning with sampled boundaries is competitive but needed a
  statistics pass the histogram algorithm does not.
"""

import pytest

from conftest import bench_workload
from repro.core.topk import HistogramTopK
from repro.storage.costmodel import CostModel
from repro.storage.spill import SpillManager
from repro.strategies import (
    LateMaterializationTopK,
    RangePartitionTopK,
    ZoneMapTopK,
)

DISAGGREGATED = CostModel(random_read_s=0.010)


def _workload_rows():
    workload = bench_workload(input_rows=40_000)
    return workload, list(workload.make_input())


def _cost(operator, rows):
    output = list(operator.execute(iter(rows)))
    return output, DISAGGREGATED.total_seconds(operator.stats)


def test_strategy_histogram(benchmark):
    workload, rows = _workload_rows()

    def run():
        spill = SpillManager(row_size=lambda _row: 143)
        return _cost(HistogramTopK(workload.sort_spec, workload.k,
                                   workload.memory_rows,
                                   spill_manager=spill), rows)

    output, _cost_s = benchmark(run)
    assert len(output) == workload.k


def test_strategy_late_materialization(benchmark):
    workload, rows = _workload_rows()

    def run():
        return _cost(LateMaterializationTopK(
            workload.sort_spec, workload.k, workload.memory_rows), rows)

    output, _cost_s = benchmark(run)
    assert len(output) == workload.k


def test_strategy_range_partition(benchmark):
    workload, rows = _workload_rows()
    boundaries = RangePartitionTopK.boundaries_from_sample(
        [row[0] for row in rows[:4_000]], 32)

    def run():
        return _cost(RangePartitionTopK(
            workload.sort_spec, workload.k, workload.memory_rows,
            boundaries), rows)

    output, _cost_s = benchmark(run)
    assert len(output) == workload.k


def test_strategy_zone_maps(benchmark):
    workload, rows = _workload_rows()

    def run():
        return _cost(ZoneMapTopK(workload.sort_spec, workload.k,
                                 workload.memory_rows, block_rows=1_024),
                     rows)

    output, _cost_s = benchmark(run)
    assert len(output) == workload.k


def test_strategy_ranking_matches_paper(benchmark):
    """One combined run asserting the paper's qualitative ordering."""
    workload, rows = _workload_rows()

    def run():
        spill = SpillManager(row_size=lambda _row: 143)
        results = {}
        _out, results["histogram"] = _cost(
            HistogramTopK(workload.sort_spec, workload.k,
                          workload.memory_rows, spill_manager=spill),
            rows)
        _out, results["late_materialization"] = _cost(
            LateMaterializationTopK(workload.sort_spec, workload.k,
                                    workload.memory_rows), rows)
        _out, results["zone_maps"] = _cost(
            ZoneMapTopK(workload.sort_spec, workload.k,
                        workload.memory_rows, block_rows=1_024), rows)
        return results

    costs = benchmark(run)
    # Expensive random reads bury late materialization.
    assert costs["late_materialization"] > costs["histogram"]
    # Full materialization costs more than eager filtering.
    assert costs["zone_maps"] > costs["histogram"]
