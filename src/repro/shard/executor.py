"""The shard coordinator: partition, feed, exchange cutoffs, merge.

One :class:`ShardedTopKExecutor` runs one top-k query across ``N``
worker processes:

1. **Partition & feed** — the input key/id stream is staged into blocks,
   routed by a :mod:`~repro.shard.partition` partitioner, and handed to
   workers as shared-memory segments (descriptors over queues, data over
   shared pages).  Bounded task queues give natural backpressure, so
   ``/dev/shm`` holds at most ``shards × queue_depth`` chunks.
2. **Cutoff exchange** — workers publish/adopt through the
   :class:`~repro.shard.slot.SharedCutoffSlot`; the coordinator reads the
   same slot so its arrival-side pre-filter (in the operator) drops rows
   before they are ever stored or shipped.
3. **Collect & merge** — each worker returns its shard-local top
   ``k + offset``; the union provably contains the global answer, which
   the coordinator extracts either with the offset-value-coded tree of
   losers (:func:`~repro.sorting.ovc.merge_coded`) over composite
   ``(binary key ‖ row id)`` keys, or with one vectorized
   ``(key, id)`` lexsort — both resolve ties by smallest global row id,
   i.e. arrival order, byte-identical to the single-process engines.

Cleanup is unconditional: a ``finally`` block sends poison pills,
terminates stragglers, unlinks every registered shared-memory segment,
and removes the spill tree — worker crash, query cancellation, and
coordinator errors all converge on the same path (see the leak-check
tests).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import shutil
import tempfile
from time import perf_counter
from typing import Iterable, Iterator

import numpy as np

from repro.errors import ConfigurationError, ShardError
from repro.obs.timeline import CutoffTimeline
from repro.obs.trace import NULL_TRACER
from repro.shard.chunks import ShmRegistry, write_chunk
from repro.shard.partition import make_partitioner
from repro.shard.slot import SharedCutoffSlot
from repro.shard.worker import DONE, ShardConfig, shard_worker_main
from repro.sorting.keycodec import encode_float_key
from repro.sorting.ovc import INITIAL_CODE, code_between, merge_coded
from repro.storage.stats import OperatorStats, SnapshotMerger

#: Cutoff-exchange modes → slot-read cadence in chunks.
EXCHANGE_INTERVALS = {"slot": 1, "periodic": 8}

#: Candidate-count threshold below which ``merge="auto"`` picks the
#: offset-value-coded tree of losers (per-row Python iteration) over the
#: vectorized lexsort.
_OVC_MERGE_LIMIT = 32_768


class ShardSummary:
    """Per-shard execution summary (feeds EXPLAIN ANALYZE and tests)."""

    def __init__(self, shard: int, payload: dict):
        stats = payload["stats"]
        self.shard = shard
        self.rows_consumed = stats.rows_consumed
        self.rows_eliminated = stats.rows_eliminated
        self.rows_spilled = stats.io.rows_spilled
        self.runs_written = stats.io.runs_written
        self.chunks = payload["chunks"]
        self.publications = payload["publications"]
        self.adoptions = payload["adoptions"]
        self.rows_dropped_remote = payload["rows_dropped_remote"]
        self.local_cutoff = payload["local_cutoff"]
        self.busy_seconds = payload["busy_seconds"]
        self.stats = stats

    def describe(self) -> str:
        return (f"rows={self.rows_consumed} spilled={self.rows_spilled} "
                f"pub={self.publications} adopt={self.adoptions} "
                f"remote_drop={self.rows_dropped_remote} "
                f"busy={self.busy_seconds:.3f}s")


class ShardedTopKExecutor:
    """Coordinator for one sharded top-k execution.

    Args:
        k: Output size (after ``offset``).
        offset: Rows to skip; applied at the final merge, so workers
            each keep ``k + offset`` candidates.
        shards: Worker process count.
        memory_rows: *Total* memory budget in rows, divided evenly
            across shards (the sharded plan uses the same budget as the
            single-process plan it replaces).
        partition: ``"hash"`` or ``"range"``.
        exchange: ``"slot"`` (check the shared slot every chunk),
            ``"periodic"`` (every few chunks), or ``"off"``.
        merge: ``"auto"``, ``"ovc"``, or ``"vector"``.
        spill: ``"memory"`` or ``"disk"`` per-shard run storage.
    """

    def __init__(
        self,
        k: int,
        shards: int,
        memory_rows: int,
        offset: int = 0,
        buckets_per_run: int = 50,
        partition: str = "hash",
        exchange: str = "slot",
        merge: str = "auto",
        spill: str = "memory",
        chunk_rows: int = 32_768,
        queue_depth: int = 4,
        stats: OperatorStats | None = None,
        tracer=None,
        mp_context=None,
        fail_shard: int | None = None,
        fail_after_chunks: int = 0,
    ):
        if k <= 0:
            raise ConfigurationError("k must be positive")
        if shards < 1:
            raise ConfigurationError("shards must be positive")
        if offset < 0:
            raise ConfigurationError("offset must be non-negative")
        if memory_rows < shards:
            raise ConfigurationError(
                "memory_rows must be at least one row per shard")
        if exchange not in ("off", *EXCHANGE_INTERVALS):
            raise ConfigurationError(
                f"unknown exchange mode {exchange!r}")
        if merge not in ("auto", "ovc", "vector"):
            raise ConfigurationError(f"unknown merge mode {merge!r}")
        if spill not in ("memory", "disk"):
            raise ConfigurationError(f"unknown spill backend {spill!r}")
        self.k = k
        self.offset = offset
        self.shards = shards
        self.memory_rows = memory_rows
        self.buckets_per_run = buckets_per_run
        self.partition = partition
        self.exchange = exchange
        self.merge = merge
        self.spill = spill
        self.chunk_rows = max(1, chunk_rows)
        self.queue_depth = max(1, queue_depth)
        self.stats = stats if stats is not None else OperatorStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._mp = mp_context or _default_context()
        self._fail_shard = fail_shard
        self._fail_after_chunks = fail_after_chunks

        # Results of the last execute():
        self.final_cutoff: float | None = None
        self.timeline: CutoffTimeline | None = None
        self.shard_summaries: list[ShardSummary] = []
        self.publications = 0
        self.adoptions = 0
        self.rows_dropped_remote = 0
        self.merge_mode_used: str | None = None
        self.elapsed_seconds = 0.0
        self.cutoff_filter = None  # API parity with the kernel

        self._slot: SharedCutoffSlot | None = None
        self._parent_cutoff: float | None = None
        self._registry: ShmRegistry | None = None

    # -- the coordinator-side cutoff view --------------------------------

    def global_cutoff(self) -> float | None:
        """Freshest globally published cutoff (the operator pre-filters
        arriving batches against this before storing rows)."""
        if self._slot is None:
            return self._parent_cutoff
        value, _ = self._slot.read_float()
        if value is not None and (self._parent_cutoff is None
                                  or value < self._parent_cutoff):
            self._parent_cutoff = value
        return self._parent_cutoff

    def note_parent_drop(self, rows: int) -> None:
        """Account rows the operator dropped with the global cutoff."""
        self.rows_dropped_remote += rows

    # -- execution --------------------------------------------------------

    def execute(self, stream: Iterable[tuple[np.ndarray, np.ndarray]],
                ) -> tuple[np.ndarray, np.ndarray]:
        """Consume ``(keys, ids)`` batches, return the selected
        ``(keys, ids)`` — global top ``k`` after ``offset``, sorted, ties
        by smallest id."""
        registry = ShmRegistry()
        self._registry = registry
        lock = self._mp.Lock()
        slot = None
        if self.exchange != "off":
            slot = SharedCutoffSlot.create(registry, lock)
            self._slot = slot
        spill_root = (tempfile.mkdtemp(prefix="repro_shard_spill_")
                      if self.spill == "disk" else None)
        task_queues = [self._mp.Queue(maxsize=self.queue_depth)
                       for _ in range(self.shards)]
        result_queue = self._mp.Queue()
        workers = []
        interval = EXCHANGE_INTERVALS.get(self.exchange, 1)
        for shard in range(self.shards):
            config = ShardConfig(
                k=self.k + self.offset,
                memory_rows=max(2, self.memory_rows // self.shards),
                buckets_per_run=self.buckets_per_run,
                slot_name=slot.name if slot is not None else None,
                exchange_interval=interval,
                spill=self.spill,
                spill_root=spill_root,
                fail_after_chunks=(self._fail_after_chunks
                                   if shard == self._fail_shard else None),
            )
            process = self._mp.Process(
                target=shard_worker_main,
                args=(shard, config, lock, task_queues[shard],
                      result_queue),
                daemon=True,
                name=f"repro-shard-{shard}",
            )
            process.start()
            workers.append(process)

        merger = SnapshotMerger(self.stats)
        payloads: dict[int, dict] = {}
        started = perf_counter()
        try:
            with self.tracer.span("shard.execute", shards=self.shards,
                                  partition=self.partition,
                                  exchange=self.exchange,
                                  spill=self.spill) as span:
                self._feed(stream, task_queues, workers, result_queue,
                           merger, payloads)
                for task_queue in task_queues:
                    self._put(task_queue, DONE, workers, result_queue,
                              merger, payloads)
                self._collect(workers, result_queue, merger, payloads)
                selected = self._finalize(payloads, span)
            return selected
        finally:
            self._shutdown(workers, task_queues, result_queue)
            if slot is not None:
                slot.close()
                self._slot = None
            registry.unlink_all()
            if spill_root is not None:
                shutil.rmtree(spill_root, ignore_errors=True)
            self.elapsed_seconds = perf_counter() - started

    # -- feeding ----------------------------------------------------------

    def _feed(self, stream, task_queues, workers, result_queue, merger,
              payloads) -> None:
        partitioner = make_partitioner(self.partition, self.shards)
        staged_keys: list[np.ndarray] = []
        staged_ids: list[np.ndarray] = []
        staged = 0
        registry = self._registry

        def flush() -> None:
            nonlocal staged
            if not staged_keys:
                return
            keys = (staged_keys[0] if len(staged_keys) == 1
                    else np.concatenate(staged_keys))
            ids = (staged_ids[0] if len(staged_ids) == 1
                   else np.concatenate(staged_ids))
            staged_keys.clear()
            staged_ids.clear()
            staged = 0
            assignment = partitioner.assign(keys)
            for shard in range(self.shards):
                mask = assignment == shard
                count = int(mask.sum())
                if not count:
                    continue
                name = write_chunk(keys[mask], ids[mask], registry)
                self._put(task_queues[shard], name, workers,
                          result_queue, merger, payloads)

        for keys, ids in stream:
            if not keys.size:
                continue
            staged_keys.append(keys)
            staged_ids.append(ids)
            staged += keys.size
            if staged >= self.chunk_rows:
                flush()
        flush()

    def _put(self, task_queue, item, workers, result_queue, merger,
             payloads) -> None:
        """Enqueue with backpressure, staying responsive to worker
        failures (a dead consumer must never wedge the coordinator)."""
        while True:
            try:
                task_queue.put(item, timeout=0.2)
                return
            except queue_module.Full:
                self._drain_results(result_queue, merger, payloads,
                                    block=False)
                self._check_alive(workers, payloads)

    # -- collection --------------------------------------------------------

    def _collect(self, workers, result_queue, merger, payloads) -> None:
        while len(payloads) < self.shards:
            if not self._drain_results(result_queue, merger, payloads,
                                       block=True):
                self._check_alive(workers, payloads)

    def _drain_results(self, result_queue, merger, payloads,
                       block: bool) -> bool:
        """Apply every queued worker message; returns whether any
        message arrived.  Raises :class:`ShardError` on a worker-reported
        failure."""
        received = False
        while True:
            try:
                message = result_queue.get(timeout=0.2 if block and
                                           not received else 0)
            except queue_module.Empty:
                return received
            received = True
            kind = message[0]
            if kind == "stats":
                _, shard, snapshot = message
                merger.apply(shard, snapshot)
            elif kind == "done":
                _, shard, payload = message
                payloads[shard] = payload
                merger.apply(shard, payload["stats"])
            elif kind == "error":
                _, shard, summary, worker_traceback = message
                raise ShardError(
                    f"shard worker {shard} failed: {summary}\n"
                    f"{worker_traceback}")

    def _check_alive(self, workers, payloads) -> None:
        for shard, process in enumerate(workers):
            if shard not in payloads and not process.is_alive():
                raise ShardError(
                    f"shard worker {shard} died without reporting "
                    f"(exit code {process.exitcode})")

    # -- merge & finalize --------------------------------------------------

    def _finalize(self, payloads: dict[int, dict],
                  span) -> tuple[np.ndarray, np.ndarray]:
        summaries = [ShardSummary(shard, payloads[shard])
                     for shard in sorted(payloads)]
        self.shard_summaries = summaries
        self.publications = sum(s.publications for s in summaries)
        self.adoptions = sum(s.adoptions for s in summaries)
        self.rows_dropped_remote += sum(s.rows_dropped_remote
                                        for s in summaries)
        self._emit_trace(payloads)
        keys, ids = self._merge_candidates(payloads)
        needed = self.k + self.offset
        self.final_cutoff = (float(keys[-1])
                             if keys.size == needed and keys.size else None)
        span.set_attribute("merge_mode", self.merge_mode_used)
        span.set_attribute("publications", self.publications)
        span.set_attribute("adoptions", self.adoptions)
        span.set_attribute("rows_dropped_remote", self.rows_dropped_remote)
        return keys[self.offset:], ids[self.offset:]

    def _merge_candidates(self, payloads) -> tuple[np.ndarray, np.ndarray]:
        parts = [(payloads[shard]["keys"], payloads[shard]["ids"])
                 for shard in sorted(payloads)
                 if payloads[shard]["keys"] is not None
                 and payloads[shard]["keys"].size]
        needed = self.k + self.offset
        if not parts:
            self.merge_mode_used = "empty"
            return (np.empty(0, dtype=np.float64),
                    np.empty(0, dtype=np.int64))
        total = sum(keys.size for keys, _ in parts)
        mode = self.merge
        if mode == "auto":
            mode = "ovc" if total <= _OVC_MERGE_LIMIT else "vector"
        self.merge_mode_used = mode
        if mode == "vector":
            keys = np.concatenate([keys for keys, _ in parts])
            ids = np.concatenate([ids for _, ids in parts])
            order = np.lexsort((ids, keys))[:needed]
            # lexsort is not charged to sort_comparisons — numpy sorts
            # are hardware comparisons, same convention as the kernel.
            return keys[order], ids[order]
        return self._merge_ovc(parts, needed)

    def _merge_ovc(self, parts, needed) -> tuple[np.ndarray, np.ndarray]:
        """Tree-of-losers merge over composite (binary key ‖ id) keys —
        per-shard candidate lists are strictly increasing in (key, id),
        so they are exactly sorted runs."""
        sources = [_coded_candidates(keys, ids) for keys, ids in parts]
        out_keys = np.empty(min(needed, sum(k.size for k, _ in parts)),
                            dtype=np.float64)
        out_ids = np.empty(out_keys.size, dtype=np.int64)
        produced = 0
        merged = merge_coded(list(range(len(sources))), encode=None,
                             sources=sources, stats=self.stats)
        for _, row, _ in merged:
            out_keys[produced] = row[0]
            out_ids[produced] = row[1]
            produced += 1
            if produced >= needed:
                break
        return out_keys[:produced], out_ids[:produced]

    # -- observability -----------------------------------------------------

    def _emit_trace(self, payloads) -> None:
        exchanges = []
        for shard in sorted(payloads):
            for kind, rows_seen, cutoff, seq in payloads[shard]["records"]:
                exchanges.append((seq, kind, shard, rows_seen, cutoff))
        exchanges.sort()
        if self.tracer.enabled:
            for seq, kind, shard, rows_seen, cutoff in exchanges:
                self.tracer.event(f"shard.cutoff.{kind}", shard=shard,
                                  seq=seq, cutoff=cutoff,
                                  rows_seen_local=rows_seen)
            for shard in sorted(payloads):
                summary = self.shard_summaries[shard]
                with self.tracer.span("shard.worker",
                                      shard=shard) as worker_span:
                    worker_span.set_attribute("rows_consumed",
                                              summary.rows_consumed)
                    worker_span.set_attribute("rows_spilled",
                                              summary.rows_spilled)
                    worker_span.set_attribute("busy_seconds",
                                              summary.busy_seconds)
                    worker_span.set_attribute("publications",
                                              summary.publications)
                    worker_span.set_attribute("adoptions",
                                              summary.adoptions)
            timeline = CutoffTimeline()
            rows_floor = 0
            for seq, kind, shard, rows_seen, cutoff in exchanges:
                if kind != "publish":
                    continue
                # Global rows-seen is estimated: a worker only knows its
                # local consumption at publish time.  The running max
                # keeps the timeline monotone.
                rows_floor = max(rows_floor, rows_seen * self.shards)
                timeline.record(rows_floor, cutoff)
            self.timeline = timeline

    # -- shutdown ----------------------------------------------------------

    def _shutdown(self, workers, task_queues, result_queue) -> None:
        for task_queue in task_queues:
            try:  # poison pills for workers still draining
                task_queue.put_nowait(DONE)
            except queue_module.Full:
                pass
        for process in workers:
            process.join(timeout=2.0)
        for process in workers:
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        for task_queue in task_queues:
            task_queue.close()
            task_queue.join_thread()
        result_queue.close()
        result_queue.join_thread()


def _default_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return multiprocessing.get_context()


def _coded_candidates(keys: np.ndarray,
                      ids: np.ndarray) -> Iterator[tuple[bytes, tuple, int]]:
    """One shard's candidates as a coded run for ``merge_coded``."""
    previous = None
    for key, row_id in zip(keys.tolist(), ids.tolist()):
        composite = encode_float_key(key) + int(row_id).to_bytes(8, "big")
        code = (INITIAL_CODE if previous is None
                else code_between(previous, composite))
        yield composite, (key, row_id), code
        previous = composite
