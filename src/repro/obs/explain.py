"""EXPLAIN ANALYZE: per-operator wall time and row flow for one query.

A :class:`PlanProbe` instruments a physical plan *in place* before
execution: every operator's ``rows()``/``batches()`` surface is wrapped
so that time spent producing each item is charged to the operator
(inclusive of its children, like every SQL engine's ``actual time``) and
output rows are counted.  A reentrancy guard keeps the two surfaces of
one node from double-charging when ``rows()`` is the flattening adapter
over ``batches()``.

After execution, :meth:`PlanProbe.analyze` folds the measurements with
each operator's :class:`~repro.storage.stats.OperatorStats` into an
:class:`AnalyzedPlan` — a tree of :class:`AnalyzedNode` records carrying
wall seconds, rows in/out, rows eliminated at arrival vs. at spill, rows
spilled, and the final cutoff key — renderable as the classic indented
``EXPLAIN ANALYZE`` text tree.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator


class _NodeMeasurement:
    """Accumulated timing/cardinality for one plan operator."""

    __slots__ = ("seconds", "rows_out", "active")

    def __init__(self):
        self.seconds = 0.0
        self.rows_out = 0
        self.active = False


def _timed_surface(make_iterator, measurement: _NodeMeasurement,
                   count_rows):
    """Wrap an iterator factory so production time/rows are measured.

    ``count_rows(item)`` maps one yielded item to its row count (1 for a
    row tuple, ``len(batch)`` for a batch).  The ``active`` flag makes
    the wrapper reentrancy-safe: when a node's ``rows()`` internally
    drains its own ``batches()``, only the outermost surface accumulates.
    """

    def surface(*args, **kwargs):
        # Iterator *construction* is timed too: some operators do all
        # their work eagerly in rows()/batches() and return a finished
        # iterator (the vectorized top-k, the in-memory sort).
        if measurement.active:
            iterator = make_iterator(*args, **kwargs)
        else:
            measurement.active = True
            started = time.perf_counter()
            try:
                iterator = make_iterator(*args, **kwargs)
            finally:
                measurement.active = False
                measurement.seconds += time.perf_counter() - started

        def produced() -> Iterator:
            if measurement.active:
                # Inner surface of the same node: pass through untimed.
                while True:
                    try:
                        item = next(iterator)
                    except StopIteration:
                        return
                    yield item
            while True:
                measurement.active = True
                started = time.perf_counter()
                try:
                    item = next(iterator)
                except StopIteration:
                    measurement.seconds += time.perf_counter() - started
                    measurement.active = False
                    return
                finally:
                    # Exceptions propagate but the flag must reset.
                    measurement.active = False
                measurement.seconds += time.perf_counter() - started
                measurement.rows_out += count_rows(item)
                yield item

        return produced()

    return surface


@dataclass
class AnalyzedNode:
    """One operator's measured execution, in tree position."""

    label: str
    wall_seconds: float
    rows_out: int
    #: Rows produced by this node's child (input cardinality); ``None``
    #: for leaves.
    rows_in: int | None
    #: Operator-specific detail (eliminations, spills, cutoff, ...).
    details: dict[str, Any] = field(default_factory=dict)
    children: list["AnalyzedNode"] = field(default_factory=list)

    def walk(self) -> Iterator["AnalyzedNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class AnalyzedPlan:
    """The analyzed plan tree plus query-level roll-ups."""

    root: AnalyzedNode
    #: Total wall seconds of the root operator (the whole query).
    wall_seconds: float
    #: The cutoff timeline of the plan's top-k node, if one was traced.
    cutoff_timeline: Any = None
    #: Final cutoff key of the plan's top-k node, if any.
    final_cutoff: Any = None

    def nodes(self) -> Iterator[AnalyzedNode]:
        return self.root.walk()

    def find(self, label_prefix: str) -> list[AnalyzedNode]:
        return [node for node in self.nodes()
                if node.label.startswith(label_prefix)]

    def render(self) -> str:
        """The indented ``EXPLAIN ANALYZE`` text tree."""
        lines: list[str] = []

        def emit(node: AnalyzedNode, depth: int) -> None:
            indent = "  " * depth
            timing = (f"actual time={node.wall_seconds * 1e3:.3f}ms "
                      f"rows={node.rows_out}")
            if node.rows_in is not None:
                timing += f" rows_in={node.rows_in}"
            lines.append(f"{indent}-> {node.label} ({timing})")
            for key, value in node.details.items():
                lines.append(f"{indent}     {key}={value}")
            for child in node.children:
                emit(child, depth + 1)

        emit(self.root, 0)
        if self.cutoff_timeline is not None and self.cutoff_timeline:
            lines.append(f"Cutoff timeline: "
                         f"{self.cutoff_timeline.describe()}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class PlanProbe:
    """Instruments one physical plan and collects its measurements."""

    def __init__(self, plan):
        self.plan = plan
        self._measurements: dict[int, _NodeMeasurement] = {}
        self._attach(plan)

    def _attach(self, node) -> None:
        measurement = _NodeMeasurement()
        self._measurements[id(node)] = measurement
        node.rows = _timed_surface(node.rows, measurement, lambda _row: 1)
        node.batches = _timed_surface(node.batches, measurement, len)
        for child in node.children():
            self._attach(child)

    def measurement(self, node) -> _NodeMeasurement:
        return self._measurements[id(node)]

    # -- post-execution analysis -----------------------------------------

    def analyze(self) -> AnalyzedPlan:
        """Fold measurements and operator stats into the analyzed tree.

        Call after the plan's output has been fully consumed; operators
        that never ran simply report zero time and rows.
        """
        root = self._analyze_node(self.plan)
        timeline, cutoff = _topk_artifacts(self.plan)
        return AnalyzedPlan(
            root=root,
            wall_seconds=root.wall_seconds,
            cutoff_timeline=timeline,
            final_cutoff=cutoff,
        )

    def _analyze_node(self, node) -> AnalyzedNode:
        measurement = self._measurements[id(node)]
        children = [self._analyze_node(child) for child in node.children()]
        rows_in = children[0].rows_out if children else None
        details: dict[str, Any] = {}
        stats = node.__dict__.get("stats")
        if stats is not None and getattr(stats, "rows_consumed", 0):
            details["rows_consumed"] = stats.rows_consumed
            details["eliminated_on_arrival"] = \
                stats.rows_eliminated_on_arrival
            details["eliminated_at_spill"] = stats.rows_eliminated_at_spill
            details["rows_spilled"] = stats.io.rows_spilled
            details["runs_written"] = stats.io.runs_written
            # Merge comparison substrate: full key comparisons vs.
            # tournaments decided by offset-value codes alone.
            if stats.full_key_comparisons or stats.code_comparisons:
                details["merge_comparisons_full"] = \
                    stats.full_key_comparisons
                details["merge_comparisons_code_only"] = \
                    stats.code_comparisons
            # Spill-path timing (disk backends only): how long the query
            # spent encoding/decoding pages, how long the writer thread
            # spent in write(), and how long anyone stalled on a full
            # writer queue or an empty read-ahead queue.
            io = stats.io
            if io.bytes_encoded or io.bytes_decoded:
                details["spill_encode_ms"] = round(
                    io.encode_seconds * 1e3, 3)
                details["spill_decode_ms"] = round(
                    io.decode_seconds * 1e3, 3)
                details["spill_write_ms"] = round(
                    io.write_seconds * 1e3, 3)
                details["spill_stall_ms"] = round(
                    io.stall_seconds * 1e3, 3)
                if io.writer_stalls or io.read_stalls:
                    details["spill_stalls"] = (f"writer={io.writer_stalls} "
                                               f"read={io.read_stalls}")
            # Page skipping (zone-map spill pages): whole pages pruned
            # against the merge cutoff before decoding, plus payload
            # bytes the key-split skeleton scan never decoded.
            if io.pages_skipped_zone_map:
                details["pages_skipped_zone_map"] = io.pages_skipped_zone_map
            if io.bytes_skipped_decode:
                details["bytes_skipped_decode"] = io.bytes_skipped_decode
            if io.payload_stitch_seconds:
                details["payload_stitch_ms"] = round(
                    io.payload_stitch_seconds * 1e3, 3)
        # Operator-specific measured details (joins, pushdown filters,
        # aggregates expose ``analyze_details()``).
        extra = getattr(node, "analyze_details", None)
        if callable(extra):
            details.update(extra())
        decision = node.__dict__.get("decision")
        if decision is not None:
            # Estimate-vs-actual: the planner's costed prediction next to
            # what the execution measured, the audit trail for the cost
            # model's calibration.
            cost = decision.chosen.cost
            details["plan_choice"] = decision.chosen.label()
            details["plan_cost_seconds"] = round(cost.seconds, 4)
            estimated_in = getattr(decision, "estimated_rows", None)
            if estimated_in is not None:
                actual_in = (stats.rows_consumed
                             if stats is not None else None)
                details["rows_in_est_vs_actual"] = (
                    f"{estimated_in:.0f} vs "
                    f"{actual_in if actual_in is not None else '?'}")
            estimated_out = getattr(decision, "estimated_out_rows", None)
            if estimated_out is not None:
                details["rows_out_est_vs_actual"] = (
                    f"{estimated_out:.0f} vs {measurement.rows_out}")
            estimated_spilled = getattr(cost, "rows_spilled", None)
            if estimated_spilled is not None:
                actual_spilled = (stats.io.rows_spilled
                                  if stats is not None else None)
                details["rows_spilled_est_vs_actual"] = (
                    f"{estimated_spilled:.0f} vs "
                    f"{actual_spilled if actual_spilled is not None else '?'}")
            details["seconds_est_vs_actual"] = (
                f"{cost.seconds:.4f} vs {measurement.seconds:.4f}")
        impl = node.__dict__.get("last_impl")
        if impl is not None:
            cutoff = getattr(impl, "final_cutoff", None)
            if cutoff is not None:
                details["final_cutoff"] = cutoff
            cutoff_filter = getattr(impl, "cutoff_filter", None)
            if cutoff_filter is not None \
                    and cutoff_filter.cutoff_key is not None:
                details["cutoff_key"] = cutoff_filter.cutoff_key
            summaries = getattr(impl, "shard_summaries", None)
            if summaries is not None:
                details["shards"] = len(summaries)
                details["shard_merge"] = impl.merge_mode_used
                details["cutoff_publications"] = impl.publications
                details["cutoff_adoptions"] = impl.adoptions
                details["rows_dropped_by_remote_cutoff"] = \
                    impl.rows_dropped_remote
                for summary in summaries:
                    details[f"shard[{summary.shard}]"] = summary.describe()
        return AnalyzedNode(
            label=node.label(),
            wall_seconds=measurement.seconds,
            rows_out=measurement.rows_out,
            rows_in=rows_in,
            details=details,
            children=children,
        )


def _topk_artifacts(plan) -> tuple[Any, Any]:
    """(timeline, final_cutoff) from the plan's top-k node, if any."""
    stack = [plan]
    while stack:
        node = stack.pop()
        impl = node.__dict__.get("last_impl")
        if impl is not None:
            timeline = getattr(impl, "timeline", None)
            cutoff = getattr(impl, "final_cutoff", None)
            if timeline is not None or cutoff is not None:
                return timeline, cutoff
        stack.extend(node.children())
    return None, None
