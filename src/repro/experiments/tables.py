"""Drivers regenerating the paper's analysis tables (Section 3.2).

Each ``tableN()`` function runs the deterministic analysis simulator at the
paper's full sizes and returns structured rows; ``render_tableN`` produces
the paper-style text table with measured-vs-paper columns.  Everything here
is exact arithmetic over the expected-value model, so results are
deterministic and fast even for the 100-million-row experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analysis import AnalysisResult, simulate_uniform
from repro.experiments import paper_data
from repro.experiments.paper_data import paper_bucket_label_to_boundaries


@dataclass
class TableRow:
    """One measured row plus the paper's published values (if any)."""

    label: str
    measured: AnalysisResult
    paper_runs: int | None = None
    paper_rows: int | None = None
    paper_cutoff: float | None = None

    @property
    def runs_delta(self) -> int | None:
        if self.paper_runs is None:
            return None
        return self.measured.runs - self.paper_runs

    @property
    def rows_delta(self) -> int | None:
        if self.paper_rows is None:
            return None
        return self.measured.rows_spilled - self.paper_rows


# -- Table 1 --------------------------------------------------------------

def table1() -> AnalysisResult:
    """The Table 1 trace: per-run cutoffs and decile keys."""
    return simulate_uniform(
        paper_data.TABLE1_INPUT,
        paper_data.TABLE1_K,
        paper_data.TABLE1_MEMORY,
        buckets_per_run=9,
        keep_traces=True,
    )


def render_table1(result: AnalysisResult | None = None) -> str:
    """Render the Table 1 trace (all runs, paper-style columns)."""
    result = result or table1()
    header = (f"{'Run':>4} {'Remaining':>11} {'Cutoff':>10} "
              + " ".join(f"{f'{d}0%':>9}" for d in range(1, 10)))
    lines = [header, "-" * len(header)]
    for trace in result.traces:
        cutoff = ("-" if trace.cutoff_before is None
                  else f"{trace.cutoff_before:.6g}")
        deciles = " ".join(
            f"{key:>9.6g}" if key is not None else f"{'':>9}"
            for key in trace.boundary_keys)
        lines.append(f"{trace.run_index:>4} {trace.remaining_before:>11,} "
                     f"{cutoff:>10} {deciles}")
    lines.append(f"total runs={result.runs} rows spilled="
                 f"{result.rows_spilled:,} final cutoff="
                 f"{result.final_cutoff:.6g}")
    return "\n".join(lines)


# -- Tables 2-5 -------------------------------------------------------------

def table2() -> list[TableRow]:
    """Varying histogram size (paper labels 0..1000)."""
    rows = []
    for label, (runs, spilled, cutoff, _ratio) in paper_data.TABLE2.items():
        if label == 0:
            # No histogram: the algorithm sorts the entire input; the
            # simulator models it directly with zero buckets.
            measured = simulate_uniform(
                paper_data.TABLE1_INPUT, paper_data.TABLE1_K,
                paper_data.TABLE1_MEMORY, buckets_per_run=0)
        else:
            measured = simulate_uniform(
                paper_data.TABLE1_INPUT, paper_data.TABLE1_K,
                paper_data.TABLE1_MEMORY,
                buckets_per_run=paper_bucket_label_to_boundaries(label))
        rows.append(TableRow(label=str(label), measured=measured,
                             paper_runs=runs, paper_rows=spilled,
                             paper_cutoff=cutoff))
    return rows


def table3() -> list[TableRow]:
    """Varying output size (k), plus the 3-histogram k=50,000 variants."""
    rows = []
    for k, (runs, spilled, cutoff, _ratio) in paper_data.TABLE3.items():
        measured = simulate_uniform(
            paper_data.TABLE1_INPUT, k, paper_data.TABLE1_MEMORY,
            buckets_per_run=9)
        rows.append(TableRow(label=f"k={k}", measured=measured,
                             paper_runs=runs, paper_rows=spilled,
                             paper_cutoff=cutoff))
    for label, (runs, spilled, cutoff, _ratio) \
            in paper_data.TABLE3_K50000_BY_BUCKETS.items():
        if label == 10:
            continue  # already measured above
        measured = simulate_uniform(
            paper_data.TABLE1_INPUT, 50_000, paper_data.TABLE1_MEMORY,
            buckets_per_run=paper_bucket_label_to_boundaries(label))
        rows.append(TableRow(label=f"k=50000/B={label}", measured=measured,
                             paper_runs=runs, paper_rows=spilled,
                             paper_cutoff=cutoff))
    return rows


def _input_size_sweep(paper_table: dict, buckets_per_run: int,
                      max_input: int | None = None) -> list[TableRow]:
    rows = []
    for input_rows, values in paper_table.items():
        if max_input is not None and input_rows > max_input:
            continue
        runs, spilled, cutoff = values[0], values[1], values[2]
        measured = simulate_uniform(
            input_rows, paper_data.TABLE1_K, paper_data.TABLE1_MEMORY,
            buckets_per_run=buckets_per_run)
        rows.append(TableRow(label=f"N={input_rows}", measured=measured,
                             paper_runs=runs, paper_rows=spilled,
                             paper_cutoff=cutoff))
    return rows


def table4(max_input: int | None = None) -> list[TableRow]:
    """Varying input size with the default (decile) histograms."""
    return _input_size_sweep(paper_data.TABLE4, buckets_per_run=9,
                             max_input=max_input)


def table5(max_input: int | None = None) -> list[TableRow]:
    """Varying input size with minimal (median-only) histograms."""
    return _input_size_sweep(paper_data.TABLE5, buckets_per_run=1,
                             max_input=max_input)


def render_table(rows: list[TableRow], title: str) -> str:
    """Paper-style rendering with measured-vs-paper deltas."""
    header = (f"{'Label':>16} | {'Runs':>5} {'(paper)':>8} | "
              f"{'Rows':>11} {'(paper)':>11} | {'Cutoff':>10} "
              f"{'(paper)':>10} | {'Ratio':>6}")
    lines = [title, header, "-" * len(header)]
    for row in rows:
        measured = row.measured
        cutoff = ("-" if measured.final_cutoff is None
                  else f"{measured.final_cutoff:.6g}")
        paper_cutoff = ("-" if row.paper_cutoff is None
                        else f"{row.paper_cutoff:.6g}")
        ratio = ("-" if measured.cutoff_ratio is None
                 else f"{measured.cutoff_ratio:.2f}")
        paper_runs = ("-" if row.paper_runs is None
                      else str(row.paper_runs))
        paper_rows = ("-" if row.paper_rows is None
                      else f"{row.paper_rows:,}")
        lines.append(
            f"{row.label:>16} | {measured.runs:>5} {paper_runs:>8} | "
            f"{measured.rows_spilled:>11,} {paper_rows:>11} | "
            f"{cutoff:>10} {paper_cutoff:>10} | {ratio:>6}")
    return "\n".join(lines)
