"""Unit tests for the result cache and its cutoff-hint index."""

import pytest

from repro.engine.operators import Table
from repro.engine.sql import parse
from repro.errors import ConfigurationError
from repro.rows.schema import Column, ColumnType, Schema
from repro.service import CachedResult, ResultCache

SCHEMA = Schema([Column("id", ColumnType.INT64),
                 Column("score", ColumnType.FLOAT64)])


def table(version=0):
    return Table("events", SCHEMA, [], version=version)


def query(sql="SELECT id FROM events ORDER BY score LIMIT 100"):
    return parse(sql)


class TestConfiguration:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ResultCache(max_results=-1)
        with pytest.raises(ConfigurationError):
            ResultCache(max_scopes=-1)
        with pytest.raises(ConfigurationError):
            ResultCache(hints_per_scope=0)


class TestKeys:
    def test_result_key_includes_version(self):
        q = query()
        assert (ResultCache.result_key(q, table(0))
                != ResultCache.result_key(q, table(1)))

    def test_result_key_normalizes_text(self):
        a = query("SELECT id FROM events ORDER BY score LIMIT 100")
        b = query("select  id from EVENTS order by score asc limit 100")
        assert (ResultCache.result_key(a, table())
                == ResultCache.result_key(b, table()))

    def test_scope_ignores_projection(self):
        a = query("SELECT id FROM events ORDER BY score LIMIT 100")
        b = query("SELECT id, score FROM events ORDER BY score LIMIT 7")
        assert (ResultCache.scope_key(a, table())
                == ResultCache.scope_key(b, table()))

    def test_scope_none_without_limit(self):
        q = query("SELECT id FROM events ORDER BY score")
        assert ResultCache.scope_key(q, table()) is None


class TestExactResults:
    def test_round_trip_and_counters(self):
        cache = ResultCache()
        key = ResultCache.result_key(query(), table())
        assert cache.get_result(key) is None
        cache.store_result(key, CachedResult(rows=[(1,)], schema=SCHEMA))
        hit = cache.get_result(key)
        assert hit.rows == [(1,)]
        assert cache.exact_hits == 1
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = ResultCache(max_results=2)
        keys = [("T", 0, f"q{i}") for i in range(3)]
        for k in keys:
            cache.store_result(k, CachedResult(rows=[], schema=SCHEMA))
        cache.get_result(keys[1])  # refresh
        cache.store_result(("T", 0, "q3"),
                           CachedResult(rows=[], schema=SCHEMA))
        assert cache.get_result(keys[0]) is None
        assert cache.get_result(keys[1]) is not None

    def test_zero_capacity_disables_storage(self):
        cache = ResultCache(max_results=0)
        key = ("T", 0, "q")
        cache.store_result(key, CachedResult(rows=[], schema=SCHEMA))
        assert cache.get_result(key) is None


class TestCutoffHints:
    SCOPE = ("EVENTS", 0, "EVENTS||SCORE:A")

    def test_store_and_serve(self):
        cache = ResultCache()
        cache.store_cutoff(self.SCOPE, 100, 0.25)
        hint = cache.get_cutoff(self.SCOPE, 100)
        assert hint.key == 0.25
        assert hint.covered == 100
        assert cache.cutoff_hits == 1

    def test_smaller_need_served_by_larger_coverage(self):
        cache = ResultCache()
        cache.store_cutoff(self.SCOPE, 100, 0.25)
        assert cache.get_cutoff(self.SCOPE, 10).key == 0.25

    def test_larger_need_never_served_by_smaller_coverage(self):
        cache = ResultCache()
        cache.store_cutoff(self.SCOPE, 100, 0.25)
        assert cache.get_cutoff(self.SCOPE, 1000) is None

    def test_smallest_eligible_coverage_wins(self):
        """Smaller proven coverage means a tighter key — prefer it."""
        cache = ResultCache()
        cache.store_cutoff(self.SCOPE, 100, 0.25)
        cache.store_cutoff(self.SCOPE, 1000, 0.8)
        assert cache.get_cutoff(self.SCOPE, 50).key == 0.25
        assert cache.get_cutoff(self.SCOPE, 500).key == 0.8

    def test_tightest_key_kept_per_coverage(self):
        cache = ResultCache()
        cache.store_cutoff(self.SCOPE, 100, 0.25)
        cache.store_cutoff(self.SCOPE, 100, 0.5)   # looser: ignored
        cache.store_cutoff(self.SCOPE, 100, 0.1)   # tighter: kept
        assert cache.get_cutoff(self.SCOPE, 100).key == 0.1

    def test_hints_per_scope_bound(self):
        cache = ResultCache(hints_per_scope=2)
        for covered in (10, 20, 30, 40):
            cache.store_cutoff(self.SCOPE, covered, covered / 100)
        # The largest coverages were dropped as each overflow occurred.
        assert cache.get_cutoff(self.SCOPE, 25) is None
        assert cache.get_cutoff(self.SCOPE, 15).covered == 20

    def test_none_scope_and_none_key_ignored(self):
        cache = ResultCache()
        cache.store_cutoff(None, 10, 0.5)
        cache.store_cutoff(self.SCOPE, 10, None)
        assert cache.get_cutoff(None, 10) is None
        assert cache.get_cutoff(self.SCOPE, 10) is None


class TestMaintenance:
    def test_invalidate_table(self):
        cache = ResultCache()
        key = ResultCache.result_key(query(), table())
        scope = ResultCache.scope_key(query(), table())
        cache.store_result(key, CachedResult(rows=[], schema=SCHEMA))
        cache.store_cutoff(scope, 100, 0.5)
        assert cache.invalidate_table("events") == 2
        assert cache.get_result(key) is None
        assert cache.get_cutoff(scope, 100) is None

    def test_clear_and_describe(self):
        cache = ResultCache()
        cache.store_result(("T", 0, "q"),
                           CachedResult(rows=[], schema=SCHEMA))
        cache.clear()
        assert "results=0" in cache.describe()
