"""Tests for the ASCII chart renderer."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.charts import ascii_chart, chart_points
from repro.experiments.figures import FigurePoint


class TestAsciiChart:
    def test_single_series_renders(self):
        chart = ascii_chart([1, 2, 3, 4], {"s": [1.0, 2.0, 3.0, 2.5]},
                            width=20, height=6)
        assert "*" in chart
        assert "|" in chart

    def test_extremes_on_borders(self):
        chart = ascii_chart([0, 10], {"s": [0.0, 5.0]},
                            width=12, height=5)
        lines = [line for line in chart.splitlines() if "|" in line]
        # max value on the top plot row, min on the bottom one.
        assert "*" in lines[0]
        assert "*" in lines[-1]

    def test_multiple_series_distinct_glyphs(self):
        chart = ascii_chart([1, 2], {"a": [1, 2], "b": [2, 1]},
                            width=10, height=4)
        assert "legend:" in chart
        assert "*=a" in chart and "o=b" in chart

    def test_log_scale_noted(self):
        chart = ascii_chart([1, 10, 100], {"s": [1, 2, 3]},
                            width=20, height=4, log_x=True)
        assert "log scale" in chart

    def test_flat_series_does_not_crash(self):
        chart = ascii_chart([1, 2, 3], {"s": [5.0, 5.0, 5.0]},
                            width=10, height=4)
        assert "*" in chart

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([], {"s": []})
        with pytest.raises(ConfigurationError):
            ascii_chart([1, 2], {"s": [1.0]})
        with pytest.raises(ConfigurationError):
            ascii_chart([1], {"s": [1.0]}, width=2, height=2)

    def test_tick_formatting(self):
        chart = ascii_chart([1_000, 2_000_000], {"s": [0.001, 12_345]},
                            width=20, height=4)
        assert "1.0e-03" in chart or "0.00" in chart


class TestChartPoints:
    def _points(self):
        return [
            FigurePoint(x=10, series="uniform", speedup=1.0,
                        spill_reduction=1.1),
            FigurePoint(x=100, series="uniform", speedup=4.0,
                        spill_reduction=7.0),
            FigurePoint(x=10, series="fal", speedup=1.1,
                        spill_reduction=1.2),
            FigurePoint(x=100, series="fal", speedup=4.1,
                        spill_reduction=7.2),
        ]

    def test_groups_by_series(self):
        chart = chart_points(self._points(), width=16, height=4)
        assert "legend:" in chart

    def test_value_selector(self):
        chart = chart_points(self._points(), value="spill_reduction",
                             width=16, height=4)
        assert "7.2" in chart  # the max tick

    def test_mismatched_xs_rejected(self):
        points = self._points()
        points[2] = FigurePoint(x=11, series="fal", speedup=1.1,
                                spill_reduction=1.2)
        with pytest.raises(ConfigurationError):
            chart_points(points)
