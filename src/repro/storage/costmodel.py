"""Disaggregated-storage cost model.

The paper's production environment (Section 2.1, "Late Materialization")
uses storage *disaggregated* from compute: every I/O pays a network round
trip, the invocation of a storage service, and time on a shared, busy disk.
Random reads are "extremely expensive" there, which is exactly why the
algorithm never re-reads the input and only performs sequential run I/O.

Re-running 2-billion-row experiments against real disks from Python would
measure the interpreter, not the algorithm (the repro calibration notes the
same).  Instead this model converts the deterministic :class:`IOStats`
counters into simulated seconds.  Because the model is a monotone function
of storage traffic and the paper observes that "the speedup ... and the
reduction of rows spilled ... are perfectly correlated", simulated-time
speedups preserve the paper's comparative shapes (who wins, where the
crossovers are) even though absolute constants differ.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.stats import IOStats, OperatorStats


@dataclass(frozen=True)
class CostModel:
    """Simulated time model for a disaggregated storage service.

    Defaults are loosely calibrated to the paper's environment: a network
    round trip plus service invocation per request, a shared 7200-rpm-class
    drive for sequential bandwidth, and very expensive random I/O.

    Attributes:
        request_overhead_s: Network RTT + storage-service invocation charged
            per read or write request.
        write_bandwidth_bytes_per_s: Sequential write throughput.
        read_bandwidth_bytes_per_s: Sequential read throughput.
        random_read_s: Full cost of one random read (seek + RTT).
        cpu_row_s: CPU time charged per row consumed by an operator.
        cpu_comparison_s: CPU time charged per key comparison.
        codec_bandwidth_bytes_per_s: CPU throughput of the page codec,
            charged over the *physical* payload bytes
            (``bytes_encoded + bytes_decoded``).  The default of
            infinity keeps the codec free — byte-identical to the model
            before codecs existed — since on the default in-memory
            backend no encoding happens at all.
    """

    request_overhead_s: float = 0.0007
    write_bandwidth_bytes_per_s: float = 120e6
    read_bandwidth_bytes_per_s: float = 140e6
    random_read_s: float = 0.010
    cpu_row_s: float = 2.0e-8
    cpu_comparison_s: float = 6.0e-9
    codec_bandwidth_bytes_per_s: float = float("inf")

    def io_seconds(self, io: IOStats) -> float:
        """Simulated seconds spent on storage traffic alone."""
        request_time = (io.write_requests + io.read_requests) \
            * self.request_overhead_s
        write_time = io.bytes_written / self.write_bandwidth_bytes_per_s
        read_time = io.bytes_read / self.read_bandwidth_bytes_per_s
        random_time = io.random_reads * self.random_read_s
        codec_time = (io.bytes_encoded + io.bytes_decoded) \
            / self.codec_bandwidth_bytes_per_s
        return request_time + write_time + read_time + random_time \
            + codec_time

    def cpu_seconds(self, stats: OperatorStats) -> float:
        """Simulated seconds of operator CPU work."""
        comparisons = stats.cutoff_comparisons + stats.sort_comparisons
        return (stats.rows_consumed * self.cpu_row_s
                + comparisons * self.cpu_comparison_s)

    def total_seconds(self, stats: OperatorStats) -> float:
        """Simulated end-to-end operator time (CPU + I/O)."""
        return self.cpu_seconds(stats) + self.io_seconds(stats.io)

    def sharded_seconds(
        self,
        shard_stats: "list[OperatorStats]",
        coordinator_stats: OperatorStats | None = None,
    ) -> float:
        """Simulated time of a sharded execution: the critical path.

        Shards run concurrently, so the parallel phase costs as much as
        its slowest shard; the coordinator's own work (partitioning feed
        plus final merge) is serial and adds on top.  This is the
        standard parallel external-memory accounting (max over
        processors + sequential remainder) and the basis of the modeled
        speedup in ``benchmarks/bench_shard.py`` — wall-clock speedups
        require as many cores as shards, which a CI container rarely
        has, while the critical path is machine-independent.
        """
        slowest = max((self.total_seconds(stats)
                       for stats in shard_stats), default=0.0)
        serial = (self.total_seconds(coordinator_stats)
                  if coordinator_stats is not None else 0.0)
        return slowest + serial


#: Model of the paper's workstation + disaggregated storage setup.
DEFAULT_COST_MODEL = CostModel()

#: Scale-consistent model for scaled-down experiments.  Per-request
#: overhead is folded into the bandwidth terms (a fixed per-request charge
#: does not shrink when a workload is scaled 1/1000, which would distort
#: comparisons at small sizes), and CPU constants reflect realistic
#: engine per-row costs so that the Figure 6 CPU-vs-I/O trade-off keeps
#: the paper's proportions.  All terms are linear in row counts, making
#: simulated-time *ratios* invariant under proportional scaling.
SCALED_COST_MODEL = CostModel(
    request_overhead_s=0.0,
    write_bandwidth_bytes_per_s=50e6,
    read_bandwidth_bytes_per_s=65e6,
    random_read_s=0.010,
    cpu_row_s=2.0e-7,
    cpu_comparison_s=4.0e-8,
)

#: A model where I/O utterly dominates (isolates spill-volume effects).
IO_BOUND_COST_MODEL = CostModel(
    request_overhead_s=0.002,
    write_bandwidth_bytes_per_s=60e6,
    read_bandwidth_bytes_per_s=80e6,
    random_read_s=0.020,
    cpu_row_s=0.0,
    cpu_comparison_s=0.0,
)


@dataclass(frozen=True)
class ResourceCost:
    """Pay-as-you-go resource cost, Section 5.6: ``memory × time``.

    The paper compares its algorithm (small memory, some extra time) to the
    in-memory priority-queue algorithm (memory for the whole output, less
    time) under a cloud-style cost of ``size of resource * time used``.
    """

    memory_bytes: int
    seconds: float

    @property
    def gigabyte_seconds(self) -> float:
        """Cost in GB·s, the unit used by the Figure 6 reproduction."""
        return self.memory_bytes / 1e9 * self.seconds

    def improvement_over(self, other: "ResourceCost") -> float:
        """How many times cheaper ``self`` is than ``other``."""
        if self.gigabyte_seconds == 0:
            return float("inf")
        return other.gigabyte_seconds / self.gigabyte_seconds
