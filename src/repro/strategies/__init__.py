"""Alternative top-k execution strategies the paper weighs and rejects.

Section 2.1 surveys execution strategies for large-output top-k; each is
implemented here so its costs can be measured rather than asserted:

* :class:`LateMaterializationTopK` — sort narrow ``(key, row_id)`` pairs,
  fetch winners with random reads (loses on disaggregated storage);
* :class:`RangePartitionTopK` — range-partition and discard high
  partitions (needs quantile foreknowledge);
* :class:`ZoneMapTopK` — materialize everything with min/max block
  statistics, prune, then select (pays full materialization up front).
"""

from repro.strategies.late_materialization import (
    LateMaterializationTopK,
    SimulatedRowStore,
)
from repro.strategies.range_partition import RangePartitionTopK
from repro.strategies.zone_maps import ZoneMapEntry, ZoneMapTopK

__all__ = [
    "LateMaterializationTopK",
    "SimulatedRowStore",
    "RangePartitionTopK",
    "ZoneMapTopK",
    "ZoneMapEntry",
]
