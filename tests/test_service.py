"""End-to-end tests of the concurrent query service."""

import random
import threading
import time

import pytest

from repro.engine.session import Database
from repro.errors import (
    ConfigurationError,
    QueryTimeoutError,
    ServiceOverloadedError,
)
from repro.rows.schema import Column, ColumnType, Schema
from repro.service import QueryService, ResultCache
from repro.storage.spill import DiskSpillBackend, SpillManager

SCHEMA = Schema([Column("id", ColumnType.INT64),
                 Column("score", ColumnType.FLOAT64),
                 Column("seg", ColumnType.STRING)])


def make_rows(count, seed=7):
    rng = random.Random(seed)
    return [(i, rng.random(), rng.choice("abcde")) for i in range(count)]


def make_database(rows=None, memory_rows=256):
    db = Database(memory_rows=memory_rows)
    db.register_table("events", SCHEMA, rows or make_rows(20_000))
    return db


class TestConfiguration:
    def test_invalid_parameters(self):
        db = make_database(rows=[(0, 0.0, "a")])
        with pytest.raises(ConfigurationError):
            QueryService(db, workers=0)
        with pytest.raises(ConfigurationError):
            QueryService(db, queue_depth=-1)

    def test_context_manager_shuts_down(self):
        db = make_database(rows=[(0, 0.5, "a")])
        with QueryService(db, workers=1) as service:
            service.execute("SELECT id FROM events ORDER BY score LIMIT 1")
        with pytest.raises(ServiceOverloadedError):
            service.submit("SELECT id FROM events ORDER BY score LIMIT 1")


class TestConcurrency:
    def test_concurrent_stress_identical_to_serial(self):
        """8 worker threads x 5 queries each, byte-identical to serial."""
        db = make_database()
        limits = (5, 17, 33, 64, 100, 250, 500, 1000)
        queries = [
            f"SELECT id, score FROM events ORDER BY score LIMIT {k}"
            for k in limits
        ]
        serial = {q: list(db.sql(q).rows) for q in queries}

        # No caching: every execution must do (and agree on) the work.
        service = QueryService(db, workers=8, queue_depth=64,
                               cache=ResultCache(max_results=0,
                                                 max_scopes=0))
        failures = []

        def client(query):
            try:
                for _ in range(5):
                    result = service.execute(query)
                    if result.rows != serial[query]:
                        failures.append(query)
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                failures.append(f"{query}: {exc!r}")

        threads = [threading.Thread(target=client, args=(q,))
                   for q in queries]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        service.shutdown()

        assert failures == []
        snap = service.snapshot()
        assert snap.completed == 40
        assert snap.errors == 0

    def test_governor_shrinks_under_concurrent_pressure(self):
        rows = make_rows(20_000)
        barrier = threading.Barrier(4)

        def gated_source():
            barrier.wait(timeout=10)  # hold queries concurrent
            return iter(rows)

        db = Database(memory_rows=256)
        db.register_table("events", SCHEMA, gated_source,
                          row_count=len(rows))
        # Budget covers only one full request; concurrent peers shrink.
        service = QueryService(db, workers=4, total_memory_rows=256,
                               cache=ResultCache(max_results=0,
                                                 max_scopes=0))
        queries = ["SELECT id, score FROM events ORDER BY score LIMIT 100"
                   ] * 4
        tickets = [service.submit(q) for q in queries]
        results = [t.result(timeout=30) for t in tickets]
        service.shutdown()

        assert all(r.rows == results[0].rows for r in results)
        shrunk = [r for r in results if r.stats.lease_shrunk]
        assert shrunk, "expected at least one shrunk lease"
        assert all(r.stats.granted_rows >= service.governor.min_lease_rows
                   for r in results)


class TestAdmissionControl:
    def test_rejects_when_saturated(self):
        rows = make_rows(1000)
        release = threading.Event()

        def blocking_source():
            release.wait(timeout=10)
            return iter(rows)

        db = Database(memory_rows=256)
        db.register_table("events", SCHEMA, blocking_source,
                          row_count=len(rows))
        service = QueryService(db, workers=1, queue_depth=1)
        sql = "SELECT id FROM events ORDER BY score LIMIT 5"
        try:
            running = service.submit(sql)   # occupies the worker
            queued = service.submit(sql)    # occupies the queue slot
            with pytest.raises(ServiceOverloadedError):
                service.submit(sql)         # nothing left: rejected
            snap = service.snapshot()
            assert snap.rejected == 1
            assert snap.submitted == 3
        finally:
            release.set()
            service.shutdown()
        assert len(running.result(timeout=10).rows) == 5
        assert len(queued.result(timeout=10).rows) == 5
        # Slots were released: admission works again post-drain... except
        # the service is shut down, which is its own rejection.
        with pytest.raises(ServiceOverloadedError):
            service.submit(sql)


class TestDeadlines:
    def test_deadline_timeout_surfaces_to_caller(self):
        rows = make_rows(1000)
        release = threading.Event()

        def slow_source():
            release.wait(timeout=10)
            return iter(rows)

        db = Database(memory_rows=256)
        db.register_table("events", SCHEMA, slow_source,
                          row_count=len(rows))
        service = QueryService(db, workers=1)
        ticket = service.submit("SELECT id FROM events ORDER BY score "
                                "LIMIT 5", deadline=0.05)
        with pytest.raises(QueryTimeoutError):
            ticket.result()
        release.set()
        service.shutdown()
        assert service.snapshot().timeouts >= 1

    def test_queued_past_deadline_is_abandoned(self):
        rows = make_rows(1000)
        release = threading.Event()

        def blocking_source():
            release.wait(timeout=10)
            return iter(rows)

        db = Database(memory_rows=256)
        db.register_table("events", SCHEMA, blocking_source,
                          row_count=len(rows))
        service = QueryService(db, workers=1, queue_depth=2,
                               default_deadline=0.05)
        first = service.submit("SELECT id FROM events ORDER BY score "
                               "LIMIT 5", deadline=30)
        # Queued behind the blocked worker; its (default) deadline expires
        # while waiting, so the worker refuses to execute it at queue exit.
        stale = service.submit("SELECT id FROM events ORDER BY score "
                               "LIMIT 7")
        time.sleep(0.1)
        release.set()
        assert len(first.result(timeout=10).rows) == 5
        with pytest.raises(QueryTimeoutError):
            stale.result(timeout=10)
        service.shutdown()
        assert service.snapshot().timeouts >= 1


class TestCaching:
    SQL = "SELECT id, score FROM events ORDER BY score LIMIT 1000"

    def test_exact_hit_served_without_execution(self):
        db = make_database()
        service = QueryService(db, workers=2)
        first = service.execute(self.SQL)
        second = service.execute(self.SQL)
        service.shutdown()

        assert not first.from_cache
        assert second.from_cache
        assert second.stats.cache == "exact"
        assert second.rows == first.rows
        assert second.operator_stats.rows_consumed == 0  # no engine work
        assert service.pool.total_queries_served() == 1

    def test_exact_hit_normalizes_whitespace_and_case(self):
        db = make_database()
        service = QueryService(db, workers=2)
        first = service.execute(self.SQL)
        second = service.execute(
            "select id,  score from EVENTS order by score asc limit 1000")
        service.shutdown()
        assert second.from_cache
        assert second.rows == first.rows

    def test_cutoff_reuse_reduces_spilling(self):
        """The acceptance criterion: a repeated identical query re-executed
        with a cached cutoff spills strictly fewer rows."""
        db = make_database()
        service = QueryService(db, workers=2,
                               cache=ResultCache(max_results=0))
        first = service.execute(self.SQL)
        second = service.execute(self.SQL)
        service.shutdown()

        assert second.rows == first.rows
        assert first.stats.rows_spilled > 0
        assert second.stats.cache == "cutoff"
        assert second.stats.seeded_cutoff == first.rows[-1][1]
        assert second.stats.rows_spilled < first.stats.rows_spilled
        assert second.stats.rows_filtered_by_seed > 0

    def test_cutoff_shared_across_projections(self):
        """A different SELECT list is a different result key but the same
        cutoff scope, so the proven bound still seeds it."""
        db = make_database()
        service = QueryService(db, workers=2,
                               cache=ResultCache(max_results=0))
        first = service.execute(self.SQL)
        other = service.execute(
            "SELECT seg FROM events ORDER BY score LIMIT 1000")
        service.shutdown()
        assert other.stats.cache == "cutoff"
        assert other.stats.rows_spilled < first.stats.rows_spilled

    def test_smaller_limit_reuses_larger_coverage(self):
        db = make_database()
        service = QueryService(db, workers=2,
                               cache=ResultCache(max_results=0))
        service.execute(self.SQL)
        smaller = service.execute(
            "SELECT id, score FROM events ORDER BY score LIMIT 100")
        service.shutdown()
        assert smaller.stats.cache == "cutoff"

    def test_larger_limit_does_not_reuse_smaller_coverage(self):
        """A cutoff proven for k=100 must never seed a k=1000 query (it
        would guarantee underflow and a wasted retry)."""
        db = make_database()
        service = QueryService(db, workers=2,
                               cache=ResultCache(max_results=0))
        service.execute(
            "SELECT id, score FROM events ORDER BY score LIMIT 100")
        larger = service.execute(self.SQL)
        service.shutdown()
        assert larger.stats.cache == "miss"
        assert larger.stats.seeded_cutoff is None

    def test_reregistration_invalidates_cache(self):
        db = make_database()
        service = QueryService(db, workers=2)
        stale_rows = service.execute(self.SQL).rows
        # Replace the table: shift every score up by 10.
        shifted = [(i, s + 10.0, g) for (i, s, g) in make_rows(20_000)]
        db.register_table("events", SCHEMA, shifted)
        fresh = service.execute(self.SQL)
        service.shutdown()
        assert not fresh.from_cache
        assert fresh.rows != stale_rows
        assert all(score > 10.0 for _, score, *_ in
                   (row for row in fresh.rows[:5]))

    def test_unlimited_query_bypasses_cache(self):
        db = make_database(rows=make_rows(500))
        service = QueryService(db, workers=1)
        result = service.execute("SELECT id FROM events ORDER BY score")
        service.shutdown()
        assert result.stats.cache == "bypass"


class TestSpillHygiene:
    def test_failed_query_leaves_no_spill_files(self, tmp_path):
        """A mid-scan failure must not leak disk spill files (the service
        runs many queries per process; leaks would accumulate)."""
        rows = make_rows(20_000)

        def exploding_source():
            def generate():
                for i, row in enumerate(rows):
                    if i == 15_000:
                        raise RuntimeError("injected scan failure")
                    yield row
            return generate()

        db = Database(memory_rows=256)
        db.register_table("events", SCHEMA, exploding_source,
                          row_count=len(rows))
        db.planner.spill_manager_factory = lambda: SpillManager(
            backend=DiskSpillBackend(str(tmp_path)))

        with pytest.raises(RuntimeError, match="injected"):
            db.sql("SELECT id, score FROM events ORDER BY score "
                   "LIMIT 1000")
        leftovers = [p for p in tmp_path.rglob("*") if p.is_file()]
        assert leftovers == []

    def test_service_releases_disk_spill_after_success(self, tmp_path):
        db = make_database()
        db.planner.spill_manager_factory = lambda: SpillManager(
            backend=DiskSpillBackend(str(tmp_path)))
        service = QueryService(db, workers=2,
                               cache=ResultCache(max_results=0,
                                                 max_scopes=0))
        for _ in range(3):
            result = service.execute(
                "SELECT id, score FROM events ORDER BY score LIMIT 1000")
            assert result.stats.rows_spilled > 0
        service.shutdown()
        leftovers = [p for p in tmp_path.rglob("*") if p.is_file()]
        assert leftovers == []


class TestObservability:
    def test_snapshot_aggregates_engine_work(self):
        db = make_database()
        service = QueryService(db, workers=2,
                               cache=ResultCache(max_results=0,
                                                 max_scopes=0))
        for _ in range(3):
            service.execute(
                "SELECT id, score FROM events ORDER BY score LIMIT 100")
        service.shutdown()
        snap = service.snapshot()
        assert snap.completed == 3
        assert snap.operator.rows_consumed == 60_000
        assert snap.io.rows_spilled == snap.operator.io.rows_spilled
        assert snap.simulated_seconds() > 0
        assert "queries=3/3" in snap.describe()

    def test_error_outcome_recorded(self):
        db = make_database(rows=make_rows(100))
        service = QueryService(db, workers=1)
        with pytest.raises(Exception):
            service.execute("SELECT nope FROM events ORDER BY score "
                            "LIMIT 5")
        service.shutdown()
        snap = service.snapshot()
        assert snap.errors == 1
        recent = service.stats.recent()
        assert recent[-1].outcome == "error"
        assert recent[-1].error
