#!/usr/bin/env python
"""Benchmark: multi-process sharded top-k with a shared global cutoff.

Runs one disk-spilling top-k workload through the sharded executor at
several worker counts and reports, per worker count:

* measured wall seconds (honest: on a machine with fewer cores than
  workers, wall time cannot show the parallel win),
* per-shard busy seconds and consumed/spilled rows,
* cutoff-exchange traffic (publications / adoptions / remote drops),
* the *modeled critical-path* seconds under the repo's disaggregated
  storage cost model (``CostModel.sharded_seconds``: max over shards,
  machine-independent) and the speedup of that path over the
  single-process baseline — the number the acceptance gate reads,
  because CI containers typically expose a single core.

Every variant's output is asserted byte-identical to the in-process
single-engine reference, and a small EXPLAIN ANALYZE run records that
cutoff publications are visible in the analyzed plan.

Results are written as JSON (default ``BENCH_shard.json``) so CI can
smoke-run with a tiny ``--rows`` budget and assert the file parses.

Usage::

    python benchmarks/bench_shard.py                   # 1M rows, 1/2/4
    python benchmarks/bench_shard.py --rows 20000 --workers 1,2 \
        --out /tmp/bench_shard.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine.session import Database  # noqa: E402
from repro.rows.schema import Column, ColumnType, Schema  # noqa: E402
from repro.shard import ShardedTopKExecutor, shm_residue  # noqa: E402
from repro.storage.costmodel import SCALED_COST_MODEL  # noqa: E402
from repro.vectorized.runs import (  # noqa: E402
    VectorRunDisk,
    VectorRunStore,
)
from repro.vectorized.topk import VectorizedHistogramTopK  # noqa: E402

#: Spill-heavy proportions (matching ``bench_spill.py``): the output is
#: far larger than the memory budget, so every engine genuinely writes
#: sorted runs to disk.
MEMORY_FRACTION = 1 / 250
K_FRACTION = 1 / 20

CHUNK_ROWS = 32_768


def make_keys(rows: int, seed: int = 7) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=rows) * 1e6


def chunk_stream(keys: np.ndarray):
    ids = np.arange(keys.size, dtype=np.int64)
    for start in range(0, keys.size, CHUNK_ROWS):
        stop = start + CHUNK_ROWS
        yield keys[start:stop], ids[start:stop]


def run_reference(keys: np.ndarray, k: int, memory_rows: int):
    """Single-process in-process kernel on a real disk store."""
    store = VectorRunStore(storage=VectorRunDisk())
    kernel = VectorizedHistogramTopK(k=k, memory_rows=memory_rows,
                                     store=store)
    started = time.perf_counter()
    try:
        out_keys, out_ids = kernel.execute(chunk_stream(keys))
    finally:
        store.close()
    seconds = time.perf_counter() - started
    return out_keys, out_ids, seconds, kernel.stats


def run_sharded(keys: np.ndarray, k: int, memory_rows: int, workers: int):
    executor = ShardedTopKExecutor(k=k, shards=workers,
                                   memory_rows=memory_rows,
                                   spill="disk", chunk_rows=CHUNK_ROWS)
    out_keys, out_ids = executor.execute(chunk_stream(keys))
    return out_keys, out_ids, executor


def explain_analyze_demo(rows: int, workers: int) -> dict:
    """A small sharded query under EXPLAIN ANALYZE: proves the cutoff
    exchange is visible in the analyzed plan."""
    schema = Schema([Column("key", ColumnType.FLOAT64),
                     Column("id", ColumnType.INT64)])
    keys = make_keys(rows, seed=11)
    table_rows = [(float(key), index)
                  for index, key in enumerate(keys)]
    db = Database(memory_rows=max(256, rows // 100), shards=workers,
                  shard_options={"min_rows_per_shard": 1,
                                 "chunk_rows": 4096})
    db.register_table("T", schema, table_rows, row_count=rows)
    limit = max(10, rows // 20)
    result = db.sql(f"SELECT * FROM T ORDER BY key LIMIT {limit}",
                    explain_analyze=True)
    nodes = result.analysis.find("ShardedVectorizedTopK")
    assert nodes, "plan did not shard"
    details = nodes[0].details
    text = result.explain_analyze()
    assert "cutoff_publications=" in text
    return {
        "rows": rows,
        "limit": limit,
        "shards": details["shards"],
        "cutoff_publications": details["cutoff_publications"],
        "cutoff_adoptions": details["cutoff_adoptions"],
        "rows_dropped_by_remote_cutoff":
            details["rows_dropped_by_remote_cutoff"],
        "visible_in_explain_analyze": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=1_000_000)
    parser.add_argument("--workers", type=str, default="1,2,4")
    parser.add_argument("--out", type=str,
                        default=str(REPO_ROOT / "BENCH_shard.json"))
    args = parser.parse_args(argv)

    rows = args.rows
    worker_counts = [int(part) for part in args.workers.split(",")]
    memory_rows = max(64, int(rows * MEMORY_FRACTION))
    k = max(memory_rows + 1, int(rows * K_FRACTION))
    keys = make_keys(rows)

    print(f"workload: rows={rows} k={k} memory_rows={memory_rows} "
          f"spill=disk cpus={os.cpu_count()}")

    ref_keys, ref_ids, ref_seconds, ref_stats = run_reference(
        keys, k, memory_rows)
    baseline_model = SCALED_COST_MODEL.total_seconds(ref_stats)
    print(f"reference (in-process): {ref_seconds:.3f}s wall, "
          f"{baseline_model:.3f}s modeled, "
          f"spilled={ref_stats.io.rows_spilled}")

    results = {}
    for workers in worker_counts:
        out_keys, out_ids, executor = run_sharded(
            keys, k, memory_rows, workers)
        identical = (np.array_equal(out_keys, ref_keys)
                     and np.array_equal(out_ids, ref_ids))
        assert identical, f"sharded output diverged at {workers} workers"
        assert shm_residue() == [], "leaked shared-memory segments"
        shard_stats = [s.stats for s in executor.shard_summaries]
        modeled = SCALED_COST_MODEL.sharded_seconds(shard_stats)
        results[str(workers)] = {
            "wall_seconds": round(executor.elapsed_seconds, 6),
            "modeled_critical_path_seconds": round(modeled, 6),
            "modeled_speedup_vs_single": round(baseline_model / modeled, 3),
            "byte_identical_to_reference": identical,
            "rows_spilled": executor.stats.io.rows_spilled,
            "cutoff_publications": executor.publications,
            "cutoff_adoptions": executor.adoptions,
            "rows_dropped_by_remote_cutoff": executor.rows_dropped_remote,
            "merge_mode": executor.merge_mode_used,
            "shards": [
                {
                    "shard": s.shard,
                    "rows_consumed": s.rows_consumed,
                    "rows_spilled": s.rows_spilled,
                    "busy_seconds": round(s.busy_seconds, 6),
                }
                for s in executor.shard_summaries
            ],
        }
        entry = results[str(workers)]
        print(f"workers={workers}: wall={entry['wall_seconds']:.3f}s "
              f"modeled={modeled:.3f}s "
              f"(x{entry['modeled_speedup_vs_single']:.2f} modeled) "
              f"pub={executor.publications} adopt={executor.adoptions}")

    demo = explain_analyze_demo(min(rows, 100_000),
                                max(worker_counts[-1], 2))

    report = {
        "benchmark": "sharded_topk",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "workload": {
            "input_rows": rows,
            "k": k,
            "memory_rows": memory_rows,
            "distribution": "normal",
            "backend": "disk",
            "chunk_rows": CHUNK_ROWS,
        },
        "cpus": os.cpu_count(),
        "note": (
            "Wall-clock speedup requires as many cores as workers; the "
            "modeled critical path (max per-shard cost under the scaled "
            "disaggregated-storage model) is machine-independent and is "
            "the acceptance number on single-core CI containers."),
        "reference": {
            "wall_seconds": round(ref_seconds, 6),
            "modeled_seconds": round(baseline_model, 6),
            "rows_spilled": ref_stats.io.rows_spilled,
        },
        "workers": results,
        "explain_analyze": demo,
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
