"""Tests for the cost-based planner and its statistics wiring.

The acceptance surface of the enumerate→cost→pick refactor: default
plans pick the historically-right path per workload shape, every legacy
knob still pins its decision, EXPLAIN carries the costed decision,
statistics persist and invalidate with table versions, and all physical
paths stay byte-identical on the same query.
"""

import random

import pytest

from repro.engine.operators import TopK, VectorizedTopK
from repro.engine.planner import (
    PlanDecision,
    Planner,
    vectorized_lowering_eligible,
)
from repro.engine.session import Database
from repro.errors import PlanError
from repro.rows.schema import Column, ColumnType, Schema
from repro.rows.sortspec import SortColumn, SortSpec
from repro.service.cache import ResultCache

SCHEMA = Schema([
    Column("K", ColumnType.FLOAT64),
    Column("G", ColumnType.INT64),
    Column("S", ColumnType.STRING),
    Column("T", ColumnType.STRING),
])


def make_rows(count, seed=3):
    rng = random.Random(seed)
    return [(rng.random() * 1000, rng.randrange(100),
             f"s{rng.randrange(10_000):05d}", f"t{rng.randrange(50):03d}")
            for _ in range(count)]


@pytest.fixture(scope="module")
def rows():
    return make_rows(20_000)


def make_db(rows, **kwargs):
    db = Database(memory_rows=2_000, **kwargs)
    db.register_table("R", SCHEMA, rows, row_count=len(rows))
    return db


def decision_of(plan) -> PlanDecision:
    stack = [plan]
    while stack:
        node = stack.pop()
        decision = node.__dict__.get("decision")
        if decision is not None:
            return decision
        stack.extend(node.children())
    raise AssertionError("no PlanDecision on the plan")


class TestDefaultChoices:
    def test_single_numeric_key_picks_vectorized(self, rows):
        db = make_db(rows)
        plan = db.plan("SELECT * FROM R ORDER BY K LIMIT 500")
        decision = decision_of(plan)
        assert decision.chosen.path == "vectorized"
        assert not decision.forced
        assert isinstance(plan, VectorizedTopK)

    def test_multi_column_string_key_picks_ovc(self, rows):
        db = make_db(rows)
        plan = db.plan("SELECT * FROM R ORDER BY S, T, G LIMIT 500")
        decision = decision_of(plan)
        assert decision.chosen.path in ("batch", "row")
        assert decision.chosen.key_encoding == "ovc"

    def test_auto_shards_stays_single_process_on_small_tables(self, rows):
        db = make_db(rows, shards="auto")
        decision = decision_of(db.plan("SELECT * FROM R ORDER BY K "
                                       "LIMIT 500"))
        assert decision.chosen.path == "vectorized"
        assert decision.chosen.shards == 1

    def test_candidates_are_recorded_and_ranked(self, rows):
        db = make_db(rows)
        decision = decision_of(db.plan("SELECT * FROM R ORDER BY K "
                                       "LIMIT 500"))
        paths = {candidate.path for candidate in decision.candidates}
        assert {"vectorized", "batch", "row"} <= paths
        best = min(decision.candidates, key=lambda c: c.cost.seconds)
        assert decision.chosen.cost.seconds == best.cost.seconds


class TestOverrides:
    def test_explicit_shards_is_a_placement_directive(self, rows):
        # 20k rows >= 2 shards * 5k threshold → eligible, so the knob
        # forces sharding exactly as before the cost-based planner.
        db = make_db(rows, shards=2,
                     shard_options={"min_rows_per_shard": 5_000})
        decision = decision_of(db.plan("SELECT * FROM R ORDER BY K "
                                       "LIMIT 200"))
        assert decision.chosen.path == "sharded"
        assert decision.chosen.shards == 2
        assert "shards" in decision.forced

    def test_shards_below_size_threshold_not_sharded(self, rows):
        db = make_db(rows, shards=2,
                     shard_options={"min_rows_per_shard": 50_000})
        decision = decision_of(db.plan("SELECT * FROM R ORDER BY K "
                                       "LIMIT 200"))
        assert decision.chosen.path == "vectorized"

    def test_pinned_key_encoding(self, rows):
        db = make_db(rows, algorithm_options={"key_encoding": "tuple"})
        decision = decision_of(db.plan("SELECT * FROM R ORDER BY S, T "
                                       "LIMIT 100"))
        assert decision.chosen.key_encoding == "tuple"
        assert "key_encoding" in decision.forced

    def test_forced_path(self, rows):
        for path, expected in (("row", TopK), ("batch", TopK),
                               ("vectorized", VectorizedTopK)):
            db = make_db(rows, force_path=path)
            plan = db.plan("SELECT * FROM R ORDER BY K LIMIT 100")
            assert isinstance(plan, expected)
            decision = decision_of(plan)
            assert decision.chosen.path == path
        if isinstance(plan, TopK):
            assert plan.execution == "batch"

    def test_forced_path_row_execution(self, rows):
        db = make_db(rows, force_path="row")
        plan = db.plan("SELECT * FROM R ORDER BY K LIMIT 100")
        assert plan.execution == "row"

    def test_forced_ineligible_path_raises(self, rows):
        db = make_db(rows, force_path="vectorized")
        with pytest.raises(PlanError):
            db.plan("SELECT * FROM R ORDER BY S LIMIT 100")

    def test_unknown_forced_path_rejected(self):
        with pytest.raises(PlanError):
            Planner(path="warp")

    def test_vectorize_false_pins_row_engine(self, rows):
        db = Database(memory_rows=2_000)
        db.register_table("R", SCHEMA, rows)
        db.planner.vectorize = False
        plan = db.plan("SELECT * FROM R ORDER BY K LIMIT 100")
        assert isinstance(plan, TopK) and not isinstance(plan,
                                                         VectorizedTopK)


class TestEligibilityPredicate:
    def spec(self, *columns):
        return SortSpec(SCHEMA, [SortColumn(c) for c in columns])

    def test_numeric_single_column_eligible(self):
        assert vectorized_lowering_eligible(self.spec("K"))

    def test_string_key_not_eligible(self):
        assert not vectorized_lowering_eligible(self.spec("S"))

    def test_ablation_options_pin_row_engine(self):
        assert not vectorized_lowering_eligible(
            self.spec("K"), algorithm_options={"run_generation": "loser"})

    def test_auto_key_encoding_is_not_an_option(self):
        assert vectorized_lowering_eligible(
            self.spec("K"), algorithm_options={"key_encoding": "auto"})

    def test_cutoff_seed_pins_row_engine(self):
        assert not vectorized_lowering_eligible(self.spec("K"),
                                                cutoff_seed=1.0)


class TestExplainSurface:
    def test_explain_shows_decision(self, rows):
        db = make_db(rows)
        text = db.explain("SELECT * FROM R ORDER BY K LIMIT 500")
        assert "Planner: path=vectorized" in text
        assert "key_encoding=" in text
        assert "fan_in=" in text
        assert "cost=" in text
        assert "candidates:" in text

    def test_explain_analyze_estimate_vs_actual(self, rows):
        db = make_db(rows)
        result = db.sql("SELECT * FROM R ORDER BY K LIMIT 500",
                        explain_analyze=True)
        text = result.explain_analyze()
        assert "plan_choice=vectorized" in text
        assert "rows_in_est_vs_actual=" in text
        assert "rows_spilled_est_vs_actual=" in text
        assert "seconds_est_vs_actual=" in text


class TestStatsFeedback:
    def test_execution_harvests_and_observes(self, rows):
        db = make_db(rows)
        db.sql("SELECT * FROM R ORDER BY K LIMIT 5000")
        entry = db.stats_catalog.get("R", 0)
        assert entry is not None
        sketch = entry.column("K")
        assert sketch is not None and sketch.histogram is not None
        assert db.stats_catalog.harvests >= 1

    def test_observed_cardinality_feeds_next_plan(self, rows):
        db = make_db(rows)
        sql = "SELECT * FROM R WHERE K < 10 ORDER BY K LIMIT 50"
        db.sql(sql)
        decision = decision_of(db.plan(sql))
        assert decision.stats_source == "observed"
        actual = sum(1 for r in rows if r[0] < 10)
        assert decision.estimated_rows == pytest.approx(actual, rel=0.01)

    def test_analyze_feeds_selectivity(self, rows):
        db = make_db(rows)
        db.analyze("R")
        decision = decision_of(db.plan(
            "SELECT * FROM R WHERE K < 100 ORDER BY K LIMIT 50"))
        assert decision.stats_source == "catalog"
        actual = sum(1 for r in rows if r[0] < 100)
        assert decision.estimated_rows == pytest.approx(actual, rel=0.35)

    def test_stats_persist_across_database_restarts(self, rows, tmp_path):
        first = make_db(rows, stats_path=tmp_path)
        first.analyze("R")
        second = make_db(rows, stats_path=tmp_path)
        entry = second.stats_catalog.get("R", 0)
        assert entry is not None and entry.exact_row_count

    def test_reregistration_invalidates_stats(self, rows):
        db = make_db(rows)
        db.analyze("R")
        db.register_table("R", SCHEMA, rows[:100], row_count=100)
        assert db.stats_catalog.get("R", 0) is None
        decision = decision_of(db.plan("SELECT * FROM R ORDER BY K "
                                       "LIMIT 10"))
        assert decision.stats_source in ("table", "catalog")
        assert decision.estimated_rows <= 100


class TestStaleSeedSpaceGuard:
    def test_mismatched_seed_space_is_dropped(self, rows):
        from repro.core.topk import HistogramTopK

        spec = SortSpec(SCHEMA, [SortColumn("S"), SortColumn("T")])
        operator = HistogramTopK(sort_key=spec, k=10, memory_rows=100,
                                 key_encoding="ovc",
                                 cutoff_seed=("sx", "tx"))
        assert operator.cutoff_seed is None  # tuple seed, byte key space
        output = list(operator.execute(iter(rows[:1000])))
        assert len(output) == 10


class TestNearestNeighborSeeding:
    def test_validated_cross_version_hint(self, rows):
        cache = ResultCache()
        old_scope = ("R", 0, "R||K:A")
        new_scope = ("R", 1, "R||K:A")
        cache.store_cutoff(old_scope, 100, 42.0)
        # Proven-scope lookup misses (new version) without a validator.
        assert cache.get_cutoff(new_scope, 100) is None
        hint = cache.get_cutoff(new_scope, 100,
                                validator=lambda key, needed: key < 50)
        assert hint is not None and hint.key == 42.0 and hint.validated
        # A rejecting validator yields nothing.
        assert cache.get_cutoff(new_scope, 100,
                                validator=lambda *_: False) is None

    def test_nearest_coverage_tried_first(self):
        cache = ResultCache()
        scope = ("R", 0, "R||K:A")
        cache.store_cutoff(scope, 10, 1.0)
        cache.store_cutoff(scope, 500, 77.0)
        tried = []

        def validator(key, needed):
            tried.append(key)
            return True

        hint = cache.get_cutoff(("R", 1, "R||K:A"), 400,
                                validator=validator)
        assert tried[0] == 77.0  # coverage 500 is nearest to 400
        assert hint.key == 77.0


class TestDifferentialPaths:
    def test_all_paths_byte_identical(self, rows):
        sql = "SELECT * FROM R WHERE G < 80 ORDER BY K LIMIT 700"
        results = {}
        for path in ("row", "batch", "vectorized"):
            db = make_db(rows, force_path=path)
            results[path] = db.sql(sql).rows
        assert results["row"] == results["batch"] == results["vectorized"]

    def test_encodings_byte_identical(self, rows):
        sql = "SELECT * FROM R ORDER BY S, T DESC LIMIT 400"
        outputs = []
        for encoding in ("ovc", "tuple"):
            db = make_db(
                rows, algorithm_options={"key_encoding": encoding})
            outputs.append(db.sql(sql).rows)
        assert outputs[0] == outputs[1]
