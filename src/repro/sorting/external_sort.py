"""A complete external merge sort operator.

This is the substrate the baseline top-k algorithms build on (Sections 2.4
and 2.5): consume the entire input into sorted runs, then merge.  It has no
input filtering of its own — that is exactly the deficiency the paper's
histogram algorithm fixes — but it supports both run-generation algorithms,
fan-in-limited multi-step merges, and top-k/offset-aware final merges.
"""

from __future__ import annotations

from itertools import chain
from typing import Any, Callable, Iterable, Iterator

from repro.errors import ConfigurationError
from repro.obs.trace import NULL_TRACER
from repro.rows.sortspec import SortSpec
from repro.sorting.keycodec import compile_keycodec
from repro.sorting.merge import Merger, MergePolicy
from repro.sorting.quicksort_runs import QuicksortRunGenerator
from repro.sorting.replacement_selection import (
    ReplacementSelectionRunGenerator,
)
from repro.sorting.runs import SortedRun
from repro.storage.spill import SpillManager
from repro.storage.stats import OperatorStats

#: Run-generation algorithm names accepted by :class:`ExternalSort`.
RUN_GENERATORS = {
    "replacement_selection": ReplacementSelectionRunGenerator,
    "quicksort": QuicksortRunGenerator,
}


class ExternalSort:
    """External merge sort over an arbitrary row stream.

    Args:
        sort_key: A :class:`~repro.rows.sortspec.SortSpec` or a
            normalized sort-key extractor callable.
        memory_rows: Operator memory capacity in rows.
        spill_manager: Secondary-storage substrate.
        run_generation: ``"replacement_selection"`` or ``"quicksort"``.
        run_size_limit: Optional per-run row cap.
        fan_in: Optional merge fan-in limit.
        merge_policy: Run-selection policy for intermediate merges.
        stats: Shared operator counters.
        tracer: Optional :class:`repro.obs.trace.Tracer`; when enabled,
            run generation and the merge phase open spans.
        merge_read_ahead: Pages of background prefetch per run during
            merging (real-I/O backends only); ``0`` disables it.
        key_encoding: ``"auto"`` (default), ``"ovc"`` or ``"tuple"`` —
            the comparison substrate, with the same semantics as
            :class:`repro.core.topk.HistogramTopK`: binary keys plus the
            offset-value coded tree-of-losers merge when the (SortSpec)
            key is encodable and worth encoding.  A plain callable
            ``sort_key`` always runs on tuple keys.
    """

    def __init__(
        self,
        sort_key: SortSpec | Callable[[tuple], Any],
        memory_rows: int,
        spill_manager: SpillManager,
        run_generation: str = "replacement_selection",
        run_size_limit: int | None = None,
        fan_in: int | None = None,
        merge_policy: MergePolicy = MergePolicy.LOWEST_KEYS_FIRST,
        stats: OperatorStats | None = None,
        tracer=None,
        merge_read_ahead: int = 2,
        key_encoding: str = "auto",
    ):
        try:
            generator_cls = RUN_GENERATORS[run_generation]
        except KeyError:
            raise ConfigurationError(
                f"unknown run generation algorithm {run_generation!r}; "
                f"choose from {sorted(RUN_GENERATORS)}"
            ) from None
        if key_encoding not in ("auto", "ovc", "tuple"):
            raise ConfigurationError(
                f"unknown key encoding {key_encoding!r} "
                "(expected 'auto', 'ovc' or 'tuple')")
        spec = sort_key if isinstance(sort_key, SortSpec) else None
        resolved_key = sort_key.key if spec is not None else sort_key
        self.key_codec = None
        if key_encoding != "tuple":
            codec = compile_keycodec(spec) if spec is not None else None
            if key_encoding == "ovc":
                if codec is None:
                    raise ConfigurationError(
                        "key_encoding='ovc' requires a SortSpec whose "
                        "column types all have binary key encoders")
                self.key_codec = codec
            elif codec is not None and codec.preferred:
                self.key_codec = codec
        if self.key_codec is not None:
            resolved_key = self.key_codec.encode
        self.stats = stats or OperatorStats()
        self._sort_key = resolved_key
        self._spill_manager = spill_manager
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._generator = generator_cls(
            sort_key=resolved_key,
            memory_rows=memory_rows,
            spill_manager=spill_manager,
            run_size_limit=run_size_limit,
            stats=self.stats,
            compute_codes=self.key_codec is not None,
        )
        self._merger = Merger(
            sort_key=resolved_key,
            spill_manager=spill_manager,
            fan_in=fan_in,
            policy=merge_policy,
            tracer=self.tracer,
            read_ahead=merge_read_ahead,
            ovc=self.key_codec is not None,
            stats=self.stats,
        )
        self.runs: list[SortedRun] = []

    def sort(
        self,
        rows: Iterable[tuple],
        limit: int | None = None,
        offset: int = 0,
    ) -> Iterator[tuple]:
        """Fully sort ``rows``, yielding at most ``limit`` rows after
        ``offset``.

        The entire input is consumed and spilled before the first output row
        is produced — the "traditional" behavior whose cost the paper's
        algorithm avoids.
        """
        def counted(stream: Iterable[tuple]) -> Iterator[tuple]:
            for row in stream:
                self.stats.rows_consumed += 1
                yield row

        with self.tracer.span("external_sort.run_generation") as span:
            self.runs = self._generator.generate(counted(rows))
            if self.tracer.enabled:
                span.set_attribute("runs", len(self.runs))
                span.set_attribute("rows_consumed",
                                   self.stats.rows_consumed)
        for row in self._merger.merge_topk(self.runs, limit, offset=offset):
            self.stats.rows_output += 1
            yield row


class StreamingSorter:
    """Bounded-memory sort of a pre-keyed row stream.

    The building block the streaming sort-merge join sides run on: feed
    ``(key, row)`` pairs with :meth:`consume_keyed`, read them back in
    key order from :meth:`stream`.  While the input fits in
    ``memory_rows`` the sort is one stable in-memory pass and storage is
    never touched; the first overflowing row hands everything buffered
    so far to quicksort run generation on the spill substrate, and the
    output becomes a fan-in-limited multiway merge of the spilled runs
    (whose files are reclaimed as the stream ends).

    Both paths are stable — the in-memory positional sort, the run
    loads (arrival order within each load), and the merge's
    run-position tie-break all preserve arrival order among equal keys —
    so the output sequence is exactly ``sorted(pairs, key=first)``.

    Args:
        sort_key: Key extractor matching the keys fed in (only used
            when spilled runs must be re-read and merged).
        memory_rows: Rows the sorter may hold before spilling.
        spill_manager: Secondary-storage substrate (shared managers are
            fine; the sorter deletes only its own run files and never
            closes the manager).
        stats: Shared operator counters (sort/merge comparisons; spill
            I/O lands on the manager's :class:`IOStats`).
        fan_in: Optional merge fan-in limit.
        read_ahead: Pages of background prefetch per run while merging.
        compute_codes: Persist offset-value codes in runs and merge via
            the OVC tree of losers (binary-key feeds only).
    """

    def __init__(
        self,
        sort_key: Callable[[tuple], Any],
        memory_rows: int,
        spill_manager: SpillManager,
        stats: OperatorStats | None = None,
        fan_in: int | None = None,
        read_ahead: int = 2,
        compute_codes: bool = False,
    ):
        if memory_rows <= 0:
            raise ConfigurationError("memory_rows must be positive")
        self._sort_key = sort_key
        self._memory_rows = memory_rows
        self._spill_manager = spill_manager
        self.stats = stats or OperatorStats()
        self._fan_in = fan_in
        self._read_ahead = read_ahead
        self._compute_codes = compute_codes
        self._keys: list = []
        self._rows: list[tuple] = []
        self._generator: QuicksortRunGenerator | None = None
        #: Whether the input exceeded memory and runs were written.
        self.spilled = False

    def consume_keyed(self, keyed_rows: Iterable[tuple]) -> None:
        """Drain ``(key, row)`` pairs into the sorter (eagerly)."""
        iterator = iter(keyed_rows)
        if self._generator is None:
            keys, rows = self._keys, self._rows
            limit = self._memory_rows
            for pair in iterator:
                if len(rows) >= limit:
                    # Overflow: switch to run generation, seeded with the
                    # buffered load, and stream the rest straight through.
                    self.spilled = True
                    self._generator = QuicksortRunGenerator(
                        sort_key=self._sort_key,
                        memory_rows=limit,
                        spill_manager=self._spill_manager,
                        stats=self.stats,
                        compute_codes=self._compute_codes,
                    )
                    self._generator.consume_keyed(zip(keys, rows))
                    self._keys, self._rows = [], []
                    iterator = chain([pair], iterator)
                    break
                keys.append(pair[0])
                rows.append(pair[1])
            else:
                return
        self._generator.consume_keyed(iterator)

    def stream(self) -> Iterator[tuple[Any, tuple]]:
        """Yield all consumed ``(key, row)`` pairs in key order."""
        if self._generator is None:
            keys, rows = self._keys, self._rows
            n = len(rows)
            if n > 1:
                order = sorted(range(n), key=keys.__getitem__)
                # Same n log n CPU-effort proxy as a run-buffer sort.
                self.stats.sort_comparisons += n * max(1, n.bit_length())
                for position in order:
                    yield keys[position], rows[position]
            elif n:
                yield keys[0], rows[0]
            return
        runs = self._generator.finish()
        merger = Merger(
            sort_key=self._sort_key,
            spill_manager=self._spill_manager,
            fan_in=self._fan_in,
            read_ahead=self._read_ahead,
            ovc=self._compute_codes,
            stats=self.stats,
        )
        yield from merger.merge_stream(runs)
