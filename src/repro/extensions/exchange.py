"""Distributed top-k over a data exchange (Section 4.4, second design).

"An alternative approach puts the sort and top logic on the consumer side
of the data exchange and the filtering on the producer side.  The
producers ship to the consumers full data packets and the consumers send
to the producers flow control packets containing the current cutoff key.
This alternative implementation approach promises less development effort
but probably also suffers from lower effectiveness than sharing histogram
priority queues."

This module simulates that architecture explicitly: producer nodes hold
partitions of the input and filter rows against the *last cutoff key they
received*; the single consumer node runs the full histogram top-k (run
generation + cutoff filter) and piggybacks a flow-control packet back
every ``flow_control_interval`` data packets.  Network traffic (packets
and rows shipped) is metered, making the paper's "lower effectiveness"
claim measurable: longer flow-control intervals ship more rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from repro.core.cutoff import CutoffFilter
from repro.core.histogram import RunHistogramBuilder
from repro.core.policies import SizingPolicy, TargetBucketsPolicy
from repro.errors import ConfigurationError
from repro.rows.sortspec import SortSpec
from repro.sorting.merge import Merger
from repro.sorting.replacement_selection import (
    ReplacementSelectionRunGenerator,
)
from repro.storage.spill import SpillManager
from repro.storage.stats import OperatorStats


@dataclass
class ExchangeStats:
    """Network traffic counters for one exchange execution."""

    data_packets: int = 0
    rows_shipped: int = 0
    flow_control_packets: int = 0
    rows_filtered_at_producers: int = 0

    @property
    def shipping_fraction(self) -> float:
        """Fraction of produced rows that actually crossed the network."""
        total = self.rows_shipped + self.rows_filtered_at_producers
        if total == 0:
            return 0.0
        return self.rows_shipped / total


class ProducerNode:
    """One producer: a partition of the input plus a stale local cutoff."""

    def __init__(self, producer_id: int, partition: Iterator[tuple],
                 sort_key: Callable[[tuple], Any],
                 stats: ExchangeStats):
        self.producer_id = producer_id
        self._partition = partition
        self._sort_key = sort_key
        self._stats = stats
        self._local_cutoff: Any = None
        self.exhausted = False

    def receive_flow_control(self, cutoff_key: Any) -> None:
        """Apply a flow-control packet (a fresher cutoff key)."""
        self._stats.flow_control_packets += 1
        if cutoff_key is not None:
            if self._local_cutoff is None or cutoff_key < self._local_cutoff:
                self._local_cutoff = cutoff_key

    def produce_packet(self, packet_rows: int) -> list[tuple]:
        """Fill one data packet, filtering with the local cutoff."""
        packet: list[tuple] = []
        while len(packet) < packet_rows:
            row = next(self._partition, None)
            if row is None:
                self.exhausted = True
                break
            if (self._local_cutoff is not None
                    and self._sort_key(row) > self._local_cutoff):
                self._stats.rows_filtered_at_producers += 1
                continue
            packet.append(row)
        if packet:
            self._stats.data_packets += 1
            self._stats.rows_shipped += len(packet)
        return packet


class _ConsumerNode:
    """The consumer: incremental histogram top-k over arriving packets."""

    def __init__(self, sort_key, k: int, memory_rows: int,
                 spill_manager: SpillManager,
                 sizing_policy: SizingPolicy,
                 stats: OperatorStats):
        self.cutoff_filter = CutoffFilter(k=k)
        self._sort_key = sort_key
        self._stats = stats
        builder = RunHistogramBuilder(
            policy=sizing_policy,
            expected_run_rows=min(2 * memory_rows, k),
            sink=self.cutoff_filter.insert,
        )
        self._generator = ReplacementSelectionRunGenerator(
            sort_key=sort_key,
            memory_rows=memory_rows,
            spill_manager=spill_manager,
            run_size_limit=k,
            spill_filter=self.cutoff_filter.eliminate,
            on_spill=lambda key, _row: builder.add(key),
            on_run_closed=lambda _run: builder.close(),
            stats=stats,
        )

    def consume_packet(self, packet: list[tuple]) -> None:
        admitted = []
        for row in packet:
            self._stats.rows_consumed += 1
            self._stats.cutoff_comparisons += 1
            if self.cutoff_filter.eliminate(self._sort_key(row)):
                self._stats.rows_eliminated_on_arrival += 1
                continue
            admitted.append(row)
        self._generator.consume(admitted)

    def finish(self):
        return self._generator.finish()


class ExchangeTopK:
    """Top-k across an exchange: producer-side filtering via flow control.

    Args:
        sort_key: :class:`SortSpec` or key extractor.
        k: Requested output size.
        memory_rows: Consumer memory budget in rows.
        producers: Number of producer nodes (input is dealt round-robin
            into per-producer partitions as it streams).
        packet_rows: Rows per data packet.
        flow_control_interval: Send a flow-control packet back to a
            producer after each of its ``interval`` data packets; larger
            intervals = staler producer cutoffs = more rows shipped.
    """

    def __init__(
        self,
        sort_key: SortSpec | Callable[[tuple], Any],
        k: int,
        memory_rows: int,
        producers: int = 4,
        packet_rows: int = 512,
        flow_control_interval: int = 1,
        spill_manager: SpillManager | None = None,
        sizing_policy: SizingPolicy | None = None,
    ):
        if k <= 0:
            raise ConfigurationError("k must be positive")
        if producers <= 0:
            raise ConfigurationError("producers must be positive")
        if packet_rows <= 0:
            raise ConfigurationError("packet_rows must be positive")
        if flow_control_interval <= 0:
            raise ConfigurationError(
                "flow_control_interval must be positive")
        self.sort_key = (sort_key.key if isinstance(sort_key, SortSpec)
                         else sort_key)
        self.k = k
        self.memory_rows = memory_rows
        self.producers = producers
        self.packet_rows = packet_rows
        self.flow_control_interval = flow_control_interval
        self.spill_manager = spill_manager or SpillManager()
        self.sizing_policy = sizing_policy or TargetBucketsPolicy(capped=False)
        self.stats = OperatorStats()
        self.stats.io = self.spill_manager.stats
        self.exchange_stats = ExchangeStats()

    def _partitions(self, rows: Iterator[tuple]) -> list[Iterator[tuple]]:
        """Deal the input round-robin into producer partitions, lazily."""
        import itertools

        streams = itertools.tee(rows, self.producers)
        return [itertools.islice(stream, index, None, self.producers)
                for index, stream in enumerate(streams)]

    def execute(self, rows: Iterable[tuple]) -> Iterator[tuple]:
        """Run the exchange and yield the global top k rows in order."""
        partitions = self._partitions(iter(rows))
        producer_nodes = [
            ProducerNode(index, partition, self.sort_key,
                         self.exchange_stats)
            for index, partition in enumerate(partitions)
        ]
        consumer = _ConsumerNode(
            self.sort_key, self.k, self.memory_rows,
            self.spill_manager, self.sizing_policy, self.stats)

        packets_since_flow = dict.fromkeys(range(self.producers), 0)
        active = list(producer_nodes)
        while active:
            for producer in list(active):
                packet = producer.produce_packet(self.packet_rows)
                if packet:
                    consumer.consume_packet(packet)
                    packets_since_flow[producer.producer_id] += 1
                    if (packets_since_flow[producer.producer_id]
                            >= self.flow_control_interval):
                        producer.receive_flow_control(
                            consumer.cutoff_filter.cutoff_key)
                        packets_since_flow[producer.producer_id] = 0
                if producer.exhausted:
                    active.remove(producer)

        runs = consumer.finish()
        merger = Merger(self.sort_key, spill_manager=self.spill_manager)
        for row in merger.merge_topk(
                runs, self.k, cutoff=consumer.cutoff_filter.cutoff_key):
            self.stats.rows_output += 1
            yield row

    @property
    def rows_shipped(self) -> int:
        """Rows that crossed the exchange network."""
        return self.exchange_stats.rows_shipped
