"""Sharded multi-process top-k: protocol units, leak checks, and the
differential leg pinning sharded output byte-identical to the
single-process engines.

Tests that actually spawn worker processes carry the ``slow_mp`` marker
(deselect with ``-m "not slow_mp"``).
"""

from __future__ import annotations

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.engine.session import Database
from repro.engine.sql import parse
from repro.errors import ConfigurationError, ShardError
from repro.rows.schema import Column, ColumnType, Schema
from repro.shard import (
    ShardedTopKExecutor,
    ShardedVectorizedTopK,
    SharedCutoffSlot,
    ShmRegistry,
    make_partitioner,
    shm_residue,
)
from repro.shard.chunks import read_chunk, write_chunk
from repro.sorting.keycodec import decode_float_key, encode_float_key
from repro.storage.stats import (
    IOStats,
    OperatorStats,
    SnapshotMerger,
    ThreadSafeIOStats,
)

SCHEMA = Schema([
    Column("key", ColumnType.FLOAT64),
    Column("id", ColumnType.INT64),
])


def make_table_rows(count: int, seed: int = 7) -> list[tuple]:
    rng = np.random.default_rng(seed)
    keys = rng.normal(size=count) * 1000.0
    return [(float(key), index) for index, key in enumerate(keys)]


def register(db: Database, rows: list[tuple]) -> None:
    db.register_table("T", SCHEMA, rows, row_count=len(rows))


# -- the seqlock slot --------------------------------------------------------


class TestSharedCutoffSlot:
    def _slot(self):
        registry = ShmRegistry()
        lock = multiprocessing.Lock()
        slot = SharedCutoffSlot.create(registry, lock)
        return slot, registry

    def test_empty_slot_reads_none(self):
        slot, registry = self._slot()
        try:
            assert slot.read() == (None, 0)
            assert slot.read_float() == (None, 0)
        finally:
            slot.close()
            registry.unlink_all()

    def test_publish_monotone_tightening_only(self):
        slot, registry = self._slot()
        try:
            assert slot.publish_float(100.0) == 1
            # Looser or equal cutoffs are rejected (no seq consumed).
            assert slot.publish_float(100.0) is None
            assert slot.publish_float(250.0) is None
            assert slot.publish_float(40.0) == 2
            value, publications = slot.read_float()
            assert value == 40.0
            assert publications == 2
        finally:
            slot.close()
            registry.unlink_all()

    def test_nan_is_never_published(self):
        slot, registry = self._slot()
        try:
            assert slot.publish_float(float("nan")) is None
            assert slot.read_float() == (None, 0)
        finally:
            slot.close()
            registry.unlink_all()

    def test_negative_and_infinite_floats_order_correctly(self):
        slot, registry = self._slot()
        try:
            slot.publish_float(float("inf"))
            slot.publish_float(-0.0)
            slot.publish_float(-1e300)
            value, _ = slot.read_float()
            assert value == -1e300
        finally:
            slot.close()
            registry.unlink_all()

    def test_oversized_key_rejected(self):
        slot, registry = self._slot()
        try:
            with pytest.raises(ConfigurationError):
                slot.publish(b"\x00" * 65)
        finally:
            slot.close()
            registry.unlink_all()

    def test_attach_sees_published_value(self):
        slot, registry = self._slot()
        try:
            slot.publish_float(7.5)
            reader = SharedCutoffSlot.attach(slot.name, slot._lock)
            try:
                assert reader.read_float() == (7.5, 1)
            finally:
                reader.close()
        finally:
            slot.close()
            registry.unlink_all()


def test_float_key_codec_roundtrip_and_order():
    values = [-1e300, -2.5, -0.0, 0.0, 1.0, 3.14, 1e300,
              float("-inf"), float("inf")]
    encoded = [encode_float_key(v) for v in values]
    for value, key in zip(values, encoded):
        assert decode_float_key(key) == value
    ordered = sorted(values)
    assert sorted(encoded) == [encode_float_key(v) for v in ordered]


# -- chunk transport ---------------------------------------------------------


class TestChunks:
    def test_roundtrip_unlinks_by_default(self):
        registry = ShmRegistry()
        keys = np.array([3.0, 1.0, 2.0])
        ids = np.array([10, 11, 12], dtype=np.int64)
        name = write_chunk(keys, ids, registry)
        assert name in shm_residue()
        out_keys, out_ids = read_chunk(name)
        np.testing.assert_array_equal(out_keys, keys)
        np.testing.assert_array_equal(out_ids, ids)
        assert name not in shm_residue()
        registry.unlink_all()

    def test_empty_chunk(self):
        registry = ShmRegistry()
        name = write_chunk(np.empty(0), np.empty(0, dtype=np.int64),
                           registry)
        out_keys, out_ids = read_chunk(name)
        assert out_keys.size == 0 and out_ids.size == 0
        registry.unlink_all()

    def test_registry_unlinks_unconsumed_segments(self):
        registry = ShmRegistry()
        names = [write_chunk(np.array([float(i)]),
                             np.array([i], dtype=np.int64), registry)
                 for i in range(3)]
        read_chunk(names[0])  # consumer retired one of them
        assert registry.unlink_all() == 2
        assert shm_residue() == []
        # Idempotent: a second sweep finds nothing.
        assert registry.unlink_all() == 0


# -- partitioners ------------------------------------------------------------


class TestPartitioners:
    def test_hash_covers_all_shards_and_is_deterministic(self):
        partitioner = make_partitioner("hash", 4)
        keys = np.random.default_rng(1).normal(size=4096)
        first = partitioner.assign(keys)
        second = partitioner.assign(keys)
        np.testing.assert_array_equal(first, second)
        assert set(np.unique(first)) == {0, 1, 2, 3}
        assert first.min() >= 0 and first.max() < 4

    def test_range_respects_key_order(self):
        partitioner = make_partitioner("range", 3)
        keys = np.linspace(-100.0, 100.0, 3000)
        assignment = partitioner.assign(keys)
        # Once boundaries are learned, shard numbers are non-decreasing
        # along sorted keys.
        assert (np.diff(assignment) >= 0).all()
        assert set(np.unique(assignment)) == {0, 1, 2}

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            make_partitioner("round_robin", 2)


# -- picklable snapshots and delta merging (satellite 1) ---------------------


class TestSnapshots:
    def test_thread_safe_iostats_pickles(self):
        stats = ThreadSafeIOStats()
        stats.rows_spilled += 42
        stats.bytes_written += 1000
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.rows_spilled == 42
        assert clone.bytes_written == 1000
        # The restored lock is functional.
        clone.rows_spilled += 1
        assert clone.rows_spilled == 43

    def test_operator_stats_subtraction(self):
        earlier = OperatorStats()
        earlier.rows_consumed = 10
        earlier.io.rows_spilled = 2
        later = OperatorStats()
        later.rows_consumed = 25
        later.io.rows_spilled = 7
        delta = later - earlier
        assert delta.rows_consumed == 15
        assert delta.io.rows_spilled == 5

    def test_snapshot_merger_never_double_counts(self):
        target = OperatorStats()
        merger = SnapshotMerger(target)
        cumulative = OperatorStats()
        for step in (10, 25, 40):
            cumulative.rows_consumed = step
            cumulative.io = IOStats(rows_spilled=step // 5)
            merger.apply("shard-0", cumulative.snapshot())
        assert target.rows_consumed == 40
        assert target.io.rows_spilled == 8
        # A second source folds independently.
        other = OperatorStats()
        other.rows_consumed = 5
        merger.apply("shard-1", other)
        assert target.rows_consumed == 45


# -- the executor end to end (multi-process) ---------------------------------


def oracle_topk(rows, k, offset=0):
    ordered = sorted(rows, key=lambda row: (row[0], row[1]))
    return ordered[offset:offset + k]


def chunk_stream(rows, batch=500):
    for start in range(0, len(rows), batch):
        part = rows[start:start + batch]
        yield (np.array([row[0] for row in part]),
               np.array([row[1] for row in part], dtype=np.int64))


@pytest.mark.slow_mp
class TestShardedExecutor:
    def test_matches_oracle_and_leaves_no_residue(self):
        rows = make_table_rows(6000)
        executor = ShardedTopKExecutor(k=700, shards=2, memory_rows=600,
                                       chunk_rows=1024)
        keys, ids = executor.execute(chunk_stream(rows))
        expected = oracle_topk(rows, 700)
        assert [(k, i) for k, i in zip(keys.tolist(), ids.tolist())] \
            == expected
        assert executor.final_cutoff == expected[-1][0]
        assert shm_residue() == []
        assert executor.stats.rows_consumed == len(rows)

    def test_offset_applied_at_final_merge(self):
        rows = make_table_rows(3000)
        executor = ShardedTopKExecutor(k=50, offset=25, shards=2,
                                       memory_rows=400, chunk_rows=512)
        keys, ids = executor.execute(chunk_stream(rows))
        expected = oracle_topk(rows, 50, offset=25)
        assert [(k, i) for k, i in zip(keys.tolist(), ids.tolist())] \
            == expected

    def test_merge_modes_agree(self):
        rows = make_table_rows(4000)
        expected = oracle_topk(rows, 300)
        for merge in ("ovc", "vector"):
            executor = ShardedTopKExecutor(k=300, shards=2,
                                           memory_rows=400,
                                           chunk_rows=512, merge=merge)
            keys, ids = executor.execute(chunk_stream(rows))
            assert executor.merge_mode_used == merge
            assert [(k, i) for k, i in zip(keys.tolist(), ids.tolist())] \
                == expected

    def test_exchange_off_still_correct(self):
        rows = make_table_rows(3000)
        executor = ShardedTopKExecutor(k=200, shards=2, memory_rows=400,
                                       chunk_rows=512, exchange="off")
        keys, ids = executor.execute(chunk_stream(rows))
        assert [(k, i) for k, i in zip(keys.tolist(), ids.tolist())] \
            == oracle_topk(rows, 200)
        assert executor.publications == 0

    def test_disk_spill_backend(self):
        rows = make_table_rows(4000)
        executor = ShardedTopKExecutor(k=600, shards=2, memory_rows=300,
                                       chunk_rows=512, spill="disk")
        keys, ids = executor.execute(chunk_stream(rows))
        assert [(k, i) for k, i in zip(keys.tolist(), ids.tolist())] \
            == oracle_topk(rows, 600)
        spilled = sum(s.rows_spilled for s in executor.shard_summaries)
        assert spilled > 0
        assert executor.stats.io.rows_spilled == spilled

    def test_worker_crash_raises_and_cleans_up(self):
        rows = make_table_rows(8000)
        executor = ShardedTopKExecutor(k=500, shards=2, memory_rows=400,
                                       chunk_rows=256, fail_shard=1,
                                       fail_after_chunks=2)
        with pytest.raises(ShardError, match="injected failure"):
            executor.execute(chunk_stream(rows))
        assert shm_residue() == []

    def test_cancellation_mid_feed_cleans_up(self):
        executor = ShardedTopKExecutor(k=100, shards=2, memory_rows=200,
                                       chunk_rows=128)

        def cancelled_stream():
            rows = make_table_rows(2000)
            yield from chunk_stream(rows, batch=200)
            raise KeyboardInterrupt("query cancelled")

        with pytest.raises(KeyboardInterrupt):
            executor.execute(cancelled_stream())
        assert shm_residue() == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShardedTopKExecutor(k=0, shards=2, memory_rows=100)
        with pytest.raises(ConfigurationError):
            ShardedTopKExecutor(k=5, shards=2, memory_rows=100,
                                exchange="gossip")
        with pytest.raises(ConfigurationError):
            ShardedTopKExecutor(k=5, shards=2, memory_rows=100,
                                merge="bogus")
        with pytest.raises(ConfigurationError):
            ShardedTopKExecutor(k=5, shards=2, memory_rows=1)


# -- the differential leg (satellite 3) --------------------------------------


@pytest.mark.slow_mp
class TestShardedDifferential:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("exchange", ["slot", "periodic"])
    def test_byte_identical_to_single_process(self, shards, exchange):
        rows = make_table_rows(9000, seed=shards * 31 + len(exchange))
        sql = "SELECT * FROM T ORDER BY key LIMIT 1500"

        baseline_db = Database(memory_rows=1200)
        register(baseline_db, rows)
        baseline = baseline_db.sql(sql)

        row_db = Database(memory_rows=1200)
        row_db.planner.vectorize = False
        register(row_db, rows)
        row_engine = row_db.sql(sql)

        sharded_db = Database(
            memory_rows=1200, shards=shards,
            shard_options={"min_rows_per_shard": 100,
                           "exchange": exchange, "chunk_rows": 1024})
        register(sharded_db, rows)
        sharded = sharded_db.sql(sql)

        assert sharded.rows == baseline.rows == row_engine.rows
        assert shm_residue() == []
        if shards >= 2:
            impl = _sharded_impl(sharded.plan)
            assert impl is not None
            per_shard = sum(s.rows_spilled for s in impl.shard_summaries)
            assert sharded.stats.io.rows_spilled == per_shard
            assert sharded.stats.rows_consumed == len(rows)

    def test_range_partition_identical_too(self):
        rows = make_table_rows(6000, seed=99)
        sql = "SELECT * FROM T ORDER BY key LIMIT 800"
        baseline_db = Database(memory_rows=900)
        register(baseline_db, rows)
        sharded_db = Database(
            memory_rows=900, shards=2,
            shard_options={"min_rows_per_shard": 100,
                           "partition": "range"})
        register(sharded_db, rows)
        assert sharded_db.sql(sql).rows == baseline_db.sql(sql).rows


def _sharded_impl(plan):
    stack = [plan]
    while stack:
        node = stack.pop()
        impl = node.__dict__.get("last_impl")
        if impl is not None and getattr(impl, "shard_summaries", None):
            return impl
        stack.extend(node.children())
    return None


# -- planner lowering --------------------------------------------------------


class TestPlannerLowering:
    def test_small_table_stays_single_process(self):
        db = Database(memory_rows=500, shards=4)
        register(db, make_table_rows(1000))
        plan = db.plan("SELECT * FROM T ORDER BY key LIMIT 10")
        assert _find(plan, ShardedVectorizedTopK) is None

    def test_large_table_lowers_to_sharded(self):
        db = Database(memory_rows=500, shards=4,
                      shard_options={"min_rows_per_shard": 100})
        register(db, make_table_rows(1000))
        plan = db.plan("SELECT * FROM T ORDER BY key LIMIT 10")
        node = _find(plan, ShardedVectorizedTopK)
        assert node is not None
        assert node.shards == 4
        assert "shards=4" in node.label()

    def test_per_query_override_forces_single_process(self):
        db = Database(memory_rows=500, shards=4,
                      shard_options={"min_rows_per_shard": 100})
        register(db, make_table_rows(1000))
        query_plan = db.planner.plan(
            parse("SELECT * FROM T ORDER BY key LIMIT 10"),
            db.table("T"), shards=1)
        assert _find(query_plan, ShardedVectorizedTopK) is None


def _find(plan, kind):
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, kind):
            return node
        stack.extend(node.children())
    return None


# -- observability (EXPLAIN ANALYZE + service metrics) -----------------------


@pytest.mark.slow_mp
class TestShardObservability:
    def test_explain_analyze_shows_cutoff_exchange(self):
        db = Database(memory_rows=800, shards=2,
                      shard_options={"min_rows_per_shard": 100,
                                     "chunk_rows": 512})
        register(db, make_table_rows(6000))
        result = db.sql("SELECT * FROM T ORDER BY key LIMIT 900",
                        explain_analyze=True)
        text = result.explain_analyze()
        assert "ShardedVectorizedTopK" in text
        assert "cutoff_publications=" in text
        assert "shard[0]=" in text and "shard[1]=" in text
        nodes = result.analysis.find("ShardedVectorizedTopK")
        assert nodes and nodes[0].details["shards"] == 2
        assert nodes[0].details["cutoff_publications"] >= 1
        spans = result.tracer.find("shard.execute")
        assert spans
        event_names = [name for _, name, _ in spans[0].events]
        assert any(name.startswith("shard.cutoff.publish")
                   for name in event_names)

    def test_service_shard_counters(self):
        db = Database(memory_rows=800, shards=2,
                      shard_options={"min_rows_per_shard": 100,
                                     "chunk_rows": 512})
        register(db, make_table_rows(6000))
        from repro.service.service import QueryService

        with QueryService(database=db, workers=1) as service:
            result = service.execute(
                "SELECT * FROM T ORDER BY key LIMIT 900")
            assert result.stats.shards == 2
            assert result.stats.shard_cutoff_publications >= 1
            snapshot = service.snapshot()
            assert snapshot.queries_sharded == 1
            assert snapshot.shard_cutoff_publications >= 1
            metrics = service.metrics_snapshot()
            assert metrics["service.shard.queries"]["value"] == 1
            assert metrics["service.shard.cutoff_publications"]["value"] \
                >= 1
