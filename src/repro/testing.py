"""Public testing utilities for top-k operator implementations.

Downstream users extending this library (custom run generation, new
filter policies, alternative operators) can verify their implementation
against the same contract the built-in algorithms satisfy:

    from repro.testing import check_topk_contract

    check_topk_contract(lambda k, memory_rows:
                        MyOperator(key_fn, k, memory_rows))

The checker runs a battery of adversarially chosen inputs — duplicates,
sorted/reverse-sorted orders, ties at the k-th position, inputs smaller
than k, heavy skew — and asserts exact agreement with the sorted-prefix
oracle.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ReproError


class TopKContractError(ReproError, AssertionError):
    """A contract violation, with the offending scenario named."""


def reference_topk(rows: Sequence[tuple], k: int,
                   sort_key: Callable[[tuple], Any],
                   offset: int = 0) -> list[tuple]:
    """The oracle: a stable full sort, sliced."""
    return sorted(rows, key=sort_key)[offset:offset + k]


def contract_scenarios(seed: int = 0) -> list[tuple[str, list[tuple]]]:
    """Named input scenarios every top-k operator must handle."""
    rng = random.Random(seed)
    uniform = [(rng.random(),) for _ in range(4_000)]
    return [
        ("empty", []),
        ("single row", [(0.5,)]),
        ("uniform random", uniform),
        ("already sorted", sorted(uniform)),
        ("reverse sorted (adversarial)",
         sorted(uniform, reverse=True)),
        ("all duplicates", [(1.0,)] * 1_000),
        ("ties at the boundary",
         [(float(value),) for value in
          [0] * 10 + [1] * 300 + [2] * 10] ),
        ("heavy skew",
         [(float(rng.randrange(3)),) for _ in range(2_000)]),
        ("negative and zero keys",
         [(float(rng.randrange(-50, 5)),) for _ in range(1_500)]),
        ("tiny input vs large k", [(rng.random(),) for _ in range(7)]),
    ]


def check_topk_contract(
    make_operator: Callable[[int, int], Any],
    ks: Iterable[int] = (1, 17, 400),
    memory_rows: Iterable[int] = (8, 100),
    sort_key: Callable[[tuple], Any] | None = None,
    seed: int = 0,
) -> int:
    """Assert an operator factory satisfies the top-k contract.

    Args:
        make_operator: Callable ``(k, memory_rows) -> operator`` where the
            operator exposes ``execute(rows) -> iterator``.
        ks: Output sizes to try (spanning both memory regimes).
        memory_rows: Memory budgets to try.
        sort_key: Key extractor matching the operator's ordering
            (defaults to the first column).
        seed: Scenario seed.

    Returns:
        The number of (scenario, k, memory) combinations checked.

    Raises:
        TopKContractError: naming the first failing combination.
    """
    key = sort_key or (lambda row: row[0])
    checked = 0
    for name, rows in contract_scenarios(seed):
        for k in ks:
            expected_full = sorted(rows, key=key)
            for memory in memory_rows:
                operator = make_operator(k, memory)
                try:
                    result = list(operator.execute(iter(list(rows))))
                except ReproError:
                    raise
                except Exception as error:  # noqa: BLE001 - reported
                    raise TopKContractError(
                        f"scenario {name!r} k={k} memory={memory}: "
                        f"operator raised {type(error).__name__}: {error}"
                    ) from error
                expected = expected_full[:k]
                if [key(row) for row in result] \
                        != [key(row) for row in expected]:
                    raise TopKContractError(
                        f"scenario {name!r} k={k} memory={memory}: "
                        f"got {len(result)} rows, keys differ from the "
                        f"sorted-prefix oracle")
                checked += 1
    return checked


def check_filter_safety(
    insert_buckets: Callable,
    eliminate: Callable[[Any], bool],
    keys: Sequence[float],
    k: int,
) -> None:
    """Assert a cutoff-filter implementation never kills an output row.

    ``insert_buckets`` is called with the key list (the implementation
    builds whatever model it wants); afterwards no key among the true
    top k may be eliminated.

    Raises:
        TopKContractError: on the first unsafe elimination.
    """
    insert_buckets(list(keys))
    for key in sorted(keys)[:k]:
        if eliminate(key):
            raise TopKContractError(
                f"filter eliminated key {key!r}, which belongs to the "
                f"true top {k}")
