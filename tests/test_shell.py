"""Tests for the interactive SQL shell plumbing."""

import pytest

from repro.engine.__main__ import build_parser, run_statement
from repro.engine.session import Database
from repro.errors import SqlSyntaxError
from repro.rows.lineitem import LINEITEM_SCHEMA, generate_lineitem


@pytest.fixture
def db():
    database = Database(memory_rows=200)
    database.register_table("LINEITEM", LINEITEM_SCHEMA,
                            list(generate_lineitem(500, seed=1)))
    return database


class TestArgumentParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.rows == 100_000
        assert args.memory == 7_000
        assert args.algorithm == "histogram"

    def test_algorithm_choices(self):
        args = build_parser().parse_args(["--algorithm", "traditional"])
        assert args.algorithm == "traditional"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--algorithm", "bogus"])


class TestRunStatement:
    def test_select_prints_rows(self, db, capsys):
        run_statement(
            db, "SELECT L_ORDERKEY FROM LINEITEM "
                "ORDER BY L_ORDERKEY LIMIT 3;")
        out = capsys.readouterr().out
        assert "L_ORDERKEY" in out
        assert len(out.strip().splitlines()) == 4  # header + 3 rows

    def test_large_result_truncated_with_total(self, db, capsys):
        run_statement(
            db, "SELECT L_ORDERKEY FROM LINEITEM ORDER BY L_ORDERKEY "
                "LIMIT 100")
        out = capsys.readouterr().out
        assert "100 rows total" in out

    def test_explain(self, db, capsys):
        run_statement(
            db, "EXPLAIN SELECT * FROM LINEITEM "
                "ORDER BY L_ORDERKEY LIMIT 5")
        out = capsys.readouterr().out
        assert "TopK" in out and "TableScan" in out

    def test_spill_summary_printed_for_external_queries(self, db, capsys):
        run_statement(
            db, "SELECT L_ORDERKEY FROM LINEITEM ORDER BY L_ORDERKEY "
                "LIMIT 400")
        out = capsys.readouterr().out
        assert "spilled" in out

    def test_quit_raises_eof(self, db):
        with pytest.raises(EOFError):
            run_statement(db, "quit")
        with pytest.raises(EOFError):
            run_statement(db, "EXIT;")

    def test_blank_statement_is_noop(self, db, capsys):
        run_statement(db, "   ")
        assert capsys.readouterr().out == ""

    def test_syntax_error_propagates_as_repro_error(self, db):
        with pytest.raises(SqlSyntaxError):
            run_statement(db, "SELEC oops")
