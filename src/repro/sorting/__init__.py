"""Sorting substrate: runs, run generation, merging, external sort,
order-preserving binary keys and offset-value coded merging."""

from repro.sorting.external_sort import RUN_GENERATORS, ExternalSort
from repro.sorting.keycodec import KeyCodec, compile_keycodec
from repro.sorting.merge import Merger, MergePolicy, merge_keyed
from repro.sorting.ovc import (
    INITIAL_CODE,
    SENTINEL_CODE,
    code_between,
    first_diff,
    merge_coded,
)
from repro.sorting.quicksort_runs import QuicksortRunGenerator
from repro.sorting.replacement_selection import (
    ReplacementSelectionRunGenerator,
)
from repro.sorting.runs import RunWriter, SortedRun, write_run

__all__ = [
    "SortedRun",
    "RunWriter",
    "write_run",
    "ReplacementSelectionRunGenerator",
    "QuicksortRunGenerator",
    "Merger",
    "MergePolicy",
    "merge_keyed",
    "merge_coded",
    "code_between",
    "first_diff",
    "INITIAL_CODE",
    "SENTINEL_CODE",
    "KeyCodec",
    "compile_keycodec",
    "ExternalSort",
    "RUN_GENERATORS",
]
