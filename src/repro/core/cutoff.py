"""The cutoff filter: a priority queue of histogram buckets.

This is the heart of the paper's contribution (Section 3.1.2).  The filter
maintains a priority queue of histogram buckets sorted in the *inverse*
direction of the requested output, so the top of the queue holds the largest
boundary key.  Invariants:

* A **cutoff key exists** exactly when the buckets together represent at
  least ``k`` rows (``Σ size ≥ k``): then at least k rows are known to sort
  at or below the top boundary, so any row sorting strictly above it cannot
  be part of the output.
* The filter **sharpens** by popping the top bucket whenever the remaining
  buckets still cover k rows (``Σ size − top.size ≥ k``); the new top
  boundary becomes the (smaller) cutoff key.  The pop check runs after
  every insertion, so the cutoff can tighten while the very run that feeds
  it is still being written.
* When the queue grows beyond its memory allocation, a **consolidation**
  step (Section 5.1.2) replaces all buckets with a single bucket whose
  boundary is the current top's boundary and whose size is the sum of all
  sizes — the filter keeps its current cutoff at the cost of future
  sharpening granularity, and pays only one insertion.
"""

from __future__ import annotations

import heapq
import logging
from dataclasses import dataclass, field
from typing import Any

from repro.core.histogram import Bucket
from repro.errors import ConfigurationError

logger = logging.getLogger(__name__)


class _ReverseKey:
    """Orders keys descending inside Python's min-heap."""

    __slots__ = ("key",)

    def __init__(self, key: Any):
        self.key = key

    def __lt__(self, other: "_ReverseKey") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ReverseKey) and not (
            self.key < other.key or other.key < self.key)

    def __repr__(self) -> str:
        return f"_ReverseKey({self.key!r})"


@dataclass
class CutoffFilterStats:
    """Observability counters for the filter (used by Section 5.5)."""

    buckets_inserted: int = 0
    buckets_popped: int = 0
    consolidations: int = 0
    refinements: int = 0
    rows_eliminated: int = 0
    #: Rows eliminated while the active cutoff was a seeded bound (i.e.
    #: before the filter's own buckets refined past the seed).
    rows_eliminated_by_seed: int = 0


@dataclass
class CutoffFilter:
    """Histogram-priority-queue cutoff filter for a top-k operation.

    The filter is agnostic to the key representation: keys are only ever
    compared with ``<`` / ``>`` and counted, never inspected.  Operators
    running on the binary key codec (:mod:`repro.sorting.keycodec`) feed
    it order-preserving byte strings and everything — buckets, cutoff
    keys, seeds — lives in that byte key space; tuple-key operators feed
    it normalized tuples.  The two spaces must never mix within one
    filter instance.

    Args:
        k: Requested output size (including any OFFSET rows: the filter
            must preserve ``offset + limit`` rows).
        bucket_capacity: Maximum buckets resident in the queue before a
            consolidation step; models the paper's 1 MB histogram memory
            allocation.  ``None`` disables consolidation.
        on_refine: Optional callback invoked with the new cutoff key on
            every establishment/refinement — lets callers trace the
            sharpening trajectory (the dynamics Table 1 tabulates).
    """

    k: int
    bucket_capacity: int | None = None
    stats: CutoffFilterStats = field(default_factory=CutoffFilterStats)
    on_refine: Any = None

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ConfigurationError("k must be positive")
        if self.bucket_capacity is not None and self.bucket_capacity < 1:
            raise ConfigurationError("bucket_capacity must be >= 1")
        self._heap: list[tuple[_ReverseKey, int, int]] = []
        self._seq = 0
        self._coverage = 0
        self._cutoff: Any = None
        self._seed_key: Any = None
        self._cutoff_from_seed = False

    # -- observers ---------------------------------------------------------

    @property
    def cutoff_key(self) -> Any:
        """The current cutoff key, or ``None`` if not yet established."""
        return self._cutoff

    @property
    def is_established(self) -> bool:
        """Whether input rows can be eliminated yet."""
        return self._cutoff is not None

    @property
    def coverage(self) -> int:
        """Total rows represented by the resident buckets (Σ size)."""
        return self._coverage

    @property
    def bucket_count(self) -> int:
        """Buckets currently resident in the priority queue."""
        return len(self._heap)

    @property
    def seed_key(self) -> Any:
        """The seeded initial bound, or ``None`` if never seeded."""
        return self._seed_key

    @property
    def cutoff_is_seed(self) -> bool:
        """Whether the current cutoff is still the seeded bound (the
        filter's own buckets have not refined past it)."""
        return self._cutoff_from_seed

    # -- core operations -----------------------------------------------------

    def seed(self, key: Any) -> None:
        """Install ``key`` as an initial cutoff bound (cutoff reuse).

        The seed asserts that at least ``k`` input rows sort at or below
        ``key`` — e.g. a cutoff achieved by an earlier query over the same
        (table version, predicates, sort spec).  Rows sorting strictly
        above it are eliminated from the very first insertion-free row.

        The filter itself cannot verify the assertion; the consuming
        operator must (and :class:`~repro.core.topk.HistogramTopK` does)
        detect underflow after the input is exhausted and raise
        :class:`~repro.errors.StaleCutoffSeed` so callers re-execute
        without the seed.  Seeding never loosens an established cutoff.
        """
        if key is None:
            return
        self._seed_key = key
        if self._cutoff is None or key < self._cutoff:
            self._cutoff = key
            self._cutoff_from_seed = True
            self.stats.refinements += 1
            if self.on_refine is not None:
                self.on_refine(key)

    def insert(self, bucket: Bucket) -> None:
        """Add one histogram bucket and re-derive the cutoff key.

        This is the whole update step: push, then pop while the remaining
        buckets still cover ``k`` rows, then (maybe) consolidate.
        """
        if bucket.size <= 0:
            raise ConfigurationError("bucket size must be positive")
        self._seq += 1
        heapq.heappush(
            self._heap, (_ReverseKey(bucket.boundary_key), self._seq,
                         bucket.size))
        self._coverage += bucket.size
        self.stats.buckets_inserted += 1

        # Sharpen: drop the largest boundaries while coverage allows.
        while self._heap and self._coverage - self._heap[0][2] >= self.k:
            _key, _seq, size = heapq.heappop(self._heap)
            self._coverage -= size
            self.stats.buckets_popped += 1

        if self._coverage >= self.k:
            new_cutoff = self._heap[0][0].key
            if self._cutoff is None or new_cutoff < self._cutoff:
                if self._cutoff is None and \
                        logger.isEnabledFor(logging.DEBUG):
                    logger.debug(
                        "cutoff established at %r after %d buckets "
                        "(coverage %d >= k=%d)", new_cutoff,
                        self.stats.buckets_inserted, self._coverage,
                        self.k)
                self._cutoff = new_cutoff
                self._cutoff_from_seed = False
                self.stats.refinements += 1
                if self.on_refine is not None:
                    self.on_refine(new_cutoff)

        if (self.bucket_capacity is not None
                and len(self._heap) > self.bucket_capacity):
            self._consolidate()

    def _consolidate(self) -> None:
        """Collapse all buckets into one (Section 5.1.2).

        The new bucket's boundary is the current top's boundary, its size
        the sum of all sizes; the established cutoff is unchanged.
        """
        top_key: _ReverseKey = self._heap[0][0]
        total = self._coverage
        dropped = len(self._heap) - 1
        self._seq += 1
        self._heap = [(top_key, self._seq, total)]
        self.stats.consolidations += 1
        logger.debug(
            "consolidated %d buckets into one (boundary %r, size %d)",
            dropped + 1, top_key.key, total)

    def admit_batch(self, keys) -> Any:
        """Vectorized :meth:`eliminate` over a whole batch of keys.

        ``keys`` is a numpy array of normalized sort keys (for descending
        numeric orders the caller passes the negated values, exactly as
        :class:`~repro.rows.sortspec.SortSpec` normalizes row keys).

        Returns ``None`` when no cutoff is established (every row is
        admitted, nothing to mask) or a boolean mask that is ``True`` for
        admitted rows.  Elimination statistics are updated in bulk; the
        semantics match the scalar path: only keys sorting *strictly
        above* the cutoff are eliminated, ties are retained.
        """
        if self._cutoff is None:
            return None
        mask = keys <= self._cutoff
        dropped = int(keys.size) - int(mask.sum())
        if dropped:
            self.stats.rows_eliminated += dropped
            if self._cutoff_from_seed:
                self.stats.rows_eliminated_by_seed += dropped
        return mask

    def eliminate(self, key: Any) -> bool:
        """Return True when a row with ``key`` cannot be in the output.

        A row is eliminated only if its key sorts *strictly above* the
        cutoff: ties with the cutoff key are retained, because the k
        guaranteed rows are only known to be ≤ the cutoff.
        """
        if self._cutoff is None:
            return False
        if key > self._cutoff:
            self.stats.rows_eliminated += 1
            if self._cutoff_from_seed:
                self.stats.rows_eliminated_by_seed += 1
            return True
        return False

    def describe(self) -> str:
        """Debug/report summary of the filter state."""
        seeded = (f" seed={self._seed_key!r}"
                  if self._seed_key is not None else "")
        return (
            f"cutoff={self._cutoff!r}{seeded} "
            f"coverage={self._coverage}/{self.k} "
            f"buckets={len(self._heap)} "
            f"(ins={self.stats.buckets_inserted} "
            f"pop={self.stats.buckets_popped} "
            f"cons={self.stats.consolidations})"
        )
