"""Tests for the three baseline top-k algorithms."""

import random

import pytest

from repro.baselines.optimized_topk import OptimizedMergeSortTopK
from repro.baselines.priority_queue_topk import PriorityQueueTopK
from repro.baselines.traditional_topk import TraditionalMergeSortTopK
from repro.errors import ConfigurationError, MemoryBudgetExceeded
from repro.storage.spill import SpillManager

KEY = lambda row: row[0]  # noqa: E731


def uniform(count, seed=0):
    rng = random.Random(seed)
    return [(rng.random(),) for _ in range(count)]


class TestPriorityQueue:
    def test_correctness(self):
        rows = uniform(5_000)
        out = list(PriorityQueueTopK(KEY, 100).execute(rows))
        assert out == sorted(rows)[:100]

    def test_offset(self):
        rows = uniform(1_000)
        out = list(PriorityQueueTopK(KEY, 10, offset=20).execute(rows))
        assert out == sorted(rows)[20:30]

    def test_fails_when_output_exceeds_memory(self):
        """The robustness problem of Section 2.3, reported honestly."""
        with pytest.raises(MemoryBudgetExceeded):
            PriorityQueueTopK(KEY, 1_000, memory_rows=500)

    def test_unbounded_memory_mode(self):
        operator = PriorityQueueTopK(KEY, 1_000, memory_rows=None)
        assert operator.peak_memory_rows == 1_000

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            PriorityQueueTopK(KEY, 0)

    def test_eliminations_counted(self):
        rows = uniform(10_000)
        operator = PriorityQueueTopK(KEY, 10)
        list(operator.execute(rows))
        assert operator.stats.rows_eliminated_on_arrival == 10_000 - 10

    def test_k_larger_than_input(self):
        rows = uniform(50)
        out = list(PriorityQueueTopK(KEY, 100).execute(rows))
        assert out == sorted(rows)

    def test_duplicate_keys(self):
        rows = [(1.0,), (1.0,), (0.0,), (1.0,)]
        out = list(PriorityQueueTopK(KEY, 3).execute(rows))
        assert out == [(0.0,), (1.0,), (1.0,)]


class TestTraditional:
    def test_in_memory_path_when_k_fits(self):
        spill = SpillManager()
        rows = uniform(5_000)
        operator = TraditionalMergeSortTopK(KEY, 100, 1_000,
                                            spill_manager=spill)
        out = list(operator.execute(rows))
        assert out == sorted(rows)[:100]
        assert spill.stats.rows_spilled == 0

    def test_external_path_spills_entire_input(self):
        spill = SpillManager()
        rows = uniform(8_000)
        operator = TraditionalMergeSortTopK(KEY, 2_000, 500,
                                            spill_manager=spill)
        out = list(operator.execute(rows))
        assert out == sorted(rows)[:2_000]
        assert spill.stats.rows_spilled == 8_000

    def test_offset(self):
        rows = uniform(5_000)
        operator = TraditionalMergeSortTopK(KEY, 100, 500, offset=900)
        assert list(operator.execute(rows)) == sorted(rows)[900:1_000]

    def test_performance_cliff_exists(self):
        """Crossing the memory boundary explodes the spill volume."""
        rows = uniform(20_000)
        below = TraditionalMergeSortTopK(KEY, 499, 500)
        list(below.execute(iter(rows)))
        above = TraditionalMergeSortTopK(KEY, 501, 500)
        list(above.execute(iter(rows)))
        assert below.stats.io.rows_spilled == 0
        assert above.stats.io.rows_spilled == 20_000


class TestOptimized:
    def test_in_memory_path_when_k_fits(self):
        rows = uniform(3_000)
        operator = OptimizedMergeSortTopK(KEY, 50, 500)
        assert list(operator.execute(rows)) == sorted(rows)[:50]

    def test_external_correctness(self):
        rows = uniform(30_000, seed=1)
        operator = OptimizedMergeSortTopK(KEY, 2_000, 500)
        assert list(operator.execute(rows)) == sorted(rows)[:2_000]

    def test_early_merge_establishes_cutoff(self):
        rows = uniform(30_000, seed=2)
        operator = OptimizedMergeSortTopK(KEY, 2_000, 500)
        list(operator.execute(rows))
        assert operator.early_merge_steps == 1
        assert operator.cutoff_key is not None

    def test_spills_less_than_traditional(self):
        rows = uniform(30_000, seed=3)
        optimized = OptimizedMergeSortTopK(KEY, 2_000, 500)
        list(optimized.execute(iter(rows)))
        traditional = TraditionalMergeSortTopK(KEY, 2_000, 500)
        list(traditional.execute(iter(rows)))
        assert (optimized.stats.io.rows_spilled
                < traditional.stats.io.rows_spilled)

    def test_early_merge_can_be_disabled(self):
        rows = uniform(20_000, seed=4)
        operator = OptimizedMergeSortTopK(KEY, 2_000, 500,
                                          early_merge=False)
        out = list(operator.execute(rows))
        assert out == sorted(rows)[:2_000]
        assert operator.early_merge_steps == 0

    def test_run_completion_refines_cutoff(self):
        # Without early merges, a completed size-k run still provides a
        # cutoff (run size is limited to k).
        rows = uniform(30_000, seed=5)
        operator = OptimizedMergeSortTopK(KEY, 500, 400,
                                          early_merge=False)
        list(operator.execute(rows))
        assert operator.cutoff_key is not None

    def test_custom_trigger(self):
        rows = uniform(30_000, seed=6)
        late = OptimizedMergeSortTopK(KEY, 2_000, 500,
                                      early_merge_trigger_rows=20_000)
        list(late.execute(iter(rows)))
        early = OptimizedMergeSortTopK(KEY, 2_000, 500,
                                       early_merge_trigger_rows=4_000)
        list(early.execute(iter(rows)))
        # Triggering later merges more rows and yields a sharper first
        # cutoff, but filters later; both must stay correct.
        assert late.cutoff_key <= early.cutoff_key

    def test_offset(self):
        rows = uniform(10_000, seed=7)
        operator = OptimizedMergeSortTopK(KEY, 300, 200, offset=100)
        assert list(operator.execute(rows)) == sorted(rows)[100:400]

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            OptimizedMergeSortTopK(KEY, 0, 10)
        with pytest.raises(ConfigurationError):
            OptimizedMergeSortTopK(KEY, 10, 0)


class TestCrossAlgorithmAgreement:
    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_all_algorithms_agree(self, seed):
        rows = uniform(12_000, seed=seed)
        expected = sorted(rows)[:1_500]
        histogram_out = None
        from repro.core.topk import HistogramTopK
        for operator in (
            HistogramTopK(KEY, 1_500, 400),
            TraditionalMergeSortTopK(KEY, 1_500, 400),
            OptimizedMergeSortTopK(KEY, 1_500, 400),
            PriorityQueueTopK(KEY, 1_500),
        ):
            assert list(operator.execute(iter(rows))) == expected
