"""Analytical simulators for the paper's Section 3.2 analysis.

The paper analyzes the algorithm with a simplified model: keys uniformly
distributed in ``[0, 1]``, load-sort-store run generation (fill memory,
sort, write), and histogram boundaries at fixed row positions within each
run.  "These calculations assume perfectly uniform random distributions but
illustrate the crucial effects clearly."

Two simulators live here:

* :func:`simulate_uniform` — the deterministic expected-value model.  Keys
  within a run take their expected order-statistic positions
  (``key(p) = p / fill * admission_cutoff``) and the input consumed per run
  is its expected value (``memory / cutoff``).  It drives the *same*
  :class:`~repro.core.cutoff.CutoffFilter` as the production operator, so
  the trace it produces (Tables 1–5) exercises the real filter logic.
* :func:`simulate_sampled` — a vectorized stochastic model drawing real
  keys from any distribution, used to cross-check the deterministic results
  and to extend the analysis beyond the uniform assumption.

Both report the quantities tabulated in the paper: run count, rows written
to secondary storage, final cutoff key, and the ratio against the ideal
cutoff (``k / input``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cutoff import CutoffFilter
from repro.core.histogram import Bucket
from repro.errors import ConfigurationError


@dataclass
class RunTrace:
    """Per-run detail backing the Table 1 reproduction."""

    run_index: int
    remaining_before: int
    cutoff_before: float | None
    input_consumed: int
    rows_written: int
    #: Key value at each histogram boundary position actually written;
    #: positions past the truncation point map to ``None`` (the empty
    #: cells of Table 1).
    boundary_keys: list[float | None] = field(default_factory=list)


@dataclass
class AnalysisResult:
    """Summary row matching the columns of Tables 2-5."""

    input_rows: int
    k: int
    memory_rows: int
    buckets_per_run: int
    runs: int
    rows_spilled: int
    final_cutoff: float | None
    traces: list[RunTrace] = field(default_factory=list)

    @property
    def ideal_cutoff(self) -> float:
        """The k-th key of the output under the uniform model."""
        return self.k / self.input_rows

    @property
    def effective_cutoff(self) -> float:
        """The cutoff with the paper's convention for "never established".

        When no cutoff was ever derived, nothing was filtered — the
        effective cutoff is the maximum key value (1.0 in the uniform
        model), which is how Table 5's smallest inputs report ``1`` and
        Table 2's zero-bucket row reports ratio 200.
        """
        return 1.0 if self.final_cutoff is None else self.final_cutoff

    @property
    def cutoff_ratio(self) -> float | None:
        """Paper's Ratio column: final cutoff / ideal cutoff."""
        if self.final_cutoff is None:
            return None
        return self.final_cutoff / self.ideal_cutoff

    @property
    def effective_cutoff_ratio(self) -> float:
        """Ratio column under the effective-cutoff convention."""
        return self.effective_cutoff / self.ideal_cutoff

    @property
    def spill_reduction_vs_full_sort(self) -> float:
        """How many times fewer rows hit storage than a full external sort."""
        if self.rows_spilled == 0:
            return float("inf")
        return self.input_rows / self.rows_spilled


def _boundary_positions(memory_rows: int, buckets_per_run: int) -> list[int]:
    """Row positions (1-based) where bucket boundaries are recorded.

    ``B`` buckets land on the ``j/(B+1)`` quantiles of a full memory-load:
    ``B=1`` tracks the median, ``B=9`` the paper's nine deciles.  Positions
    are fixed per the memory capacity (not the actual fill), matching the
    paper's Table 1 where the final short run still reports boundaries at
    rows 100, 200, ...
    """
    if buckets_per_run <= 0:
        return []
    stride = memory_rows // (buckets_per_run + 1)
    if stride == 0:
        stride = 1
    positions = list(range(stride, memory_rows + 1, stride))
    return positions[:buckets_per_run]


def simulate_uniform(
    input_rows: int,
    k: int,
    memory_rows: int,
    buckets_per_run: int,
    keep_traces: bool = False,
    bucket_capacity: int | None = None,
) -> AnalysisResult:
    """Deterministic expected-value simulation of Algorithm 1.

    Args:
        input_rows: Total unsorted input rows (uniform keys in ``[0, 1]``).
        k: Requested output size.
        memory_rows: Memory capacity in rows.
        buckets_per_run: Histogram sizing policy (0 = no histogram: the
            algorithm degenerates to sorting the whole input).
        keep_traces: Record per-run detail (needed for Table 1).
        bucket_capacity: Optional consolidation budget for the filter.

    Returns:
        An :class:`AnalysisResult` with the paper's Runs / Rows / Cutoff
        metrics.
    """
    if input_rows < 0:
        raise ConfigurationError("input_rows must be non-negative")
    if memory_rows <= 0:
        raise ConfigurationError("memory_rows must be positive")

    positions = _boundary_positions(memory_rows, buckets_per_run)
    cutoff_filter = CutoffFilter(k=k, bucket_capacity=bucket_capacity)
    remaining = input_rows
    runs = 0
    rows_spilled = 0
    traces: list[RunTrace] = []

    while remaining > 0:
        cutoff_before = cutoff_filter.cutoff_key
        admission_cutoff = 1.0 if cutoff_before is None else cutoff_before
        if admission_cutoff <= 0:
            break
        # Expected input consumed to gather a full memory-load of rows
        # that pass the admission filter.
        needed = int(memory_rows / admission_cutoff)
        if needed <= remaining:
            consumed = needed
            fill = memory_rows
        else:
            consumed = remaining
            fill = int(remaining * admission_cutoff)
        remaining -= consumed
        if fill == 0:
            # The leftover input is entirely above the cutoff: consumed
            # and eliminated without producing another run.
            continue

        runs += 1
        written = 0
        boundary_keys: list[float | None] = []
        position_index = 0
        truncated = False
        for p in range(1, fill + 1):
            key = p / fill * admission_cutoff
            current = cutoff_filter.cutoff_key
            if current is not None and key > current:
                truncated = True
                break
            written += 1
            if (position_index < len(positions)
                    and p == positions[position_index]):
                size = positions[position_index] - (
                    positions[position_index - 1] if position_index else 0)
                cutoff_filter.insert(Bucket(boundary_key=key, size=size))
                boundary_keys.append(key)
                position_index += 1
        rows_spilled += written
        if keep_traces:
            while len(boundary_keys) < len(positions):
                boundary_keys.append(None)
            traces.append(RunTrace(
                run_index=runs,
                remaining_before=remaining + consumed,
                cutoff_before=cutoff_before,
                input_consumed=consumed,
                rows_written=written,
                boundary_keys=boundary_keys,
            ))

    return AnalysisResult(
        input_rows=input_rows,
        k=k,
        memory_rows=memory_rows,
        buckets_per_run=buckets_per_run,
        runs=runs,
        rows_spilled=rows_spilled,
        final_cutoff=cutoff_filter.cutoff_key,
        traces=traces,
    )


def simulate_sampled(
    input_rows: int,
    k: int,
    memory_rows: int,
    buckets_per_run: int,
    seed: int = 0,
    distribution=None,
    chunk_rows: int = 1 << 18,
    bucket_capacity: int | None = None,
) -> AnalysisResult:
    """Stochastic, vectorized simulation over actually-sampled keys.

    Implements the same load-sort-store + cutoff-filter algorithm as
    :func:`simulate_uniform` but over real samples, in numpy, so that the
    analysis can be cross-checked at full paper sizes and repeated for any
    distribution.  The final cutoff is reported normalized by the maximum
    possible key only for the uniform distribution; for others the raw key
    is reported.
    """
    from repro.datagen.distributions import UNIFORM

    distribution = distribution or UNIFORM
    positions = _boundary_positions(memory_rows, buckets_per_run)
    cutoff_filter = CutoffFilter(k=k, bucket_capacity=bucket_capacity)

    rng_chunk = 0
    pending = np.empty(0, dtype=np.float64)
    produced = 0

    def next_chunk() -> np.ndarray | None:
        nonlocal rng_chunk, produced
        if produced >= input_rows:
            return None
        count = min(chunk_rows, input_rows - produced)
        chunk = distribution.sample(count, seed=seed + rng_chunk)
        rng_chunk += 1
        produced += count
        return chunk

    runs = 0
    rows_spilled = 0

    while True:
        # ---- fill memory with rows passing the admission filter ----
        # ``pending`` holds generated-but-not-yet-arrived keys; they are
        # filtered with the *current* cutoff when they arrive, exactly as
        # a streaming input would be.
        survivors: list[np.ndarray] = []
        survivor_count = 0
        exhausted = False
        cutoff = cutoff_filter.cutoff_key
        if pending.size and cutoff is not None:
            pending = pending[pending <= cutoff]
        while survivor_count < memory_rows:
            if pending.size == 0:
                chunk = next_chunk()
                if chunk is None:
                    exhausted = True
                    break
                if cutoff is not None:
                    chunk = chunk[chunk <= cutoff]
                pending = chunk
                continue
            room = memory_rows - survivor_count
            take = pending[:room]
            pending = pending[take.size:]
            survivors.append(take)
            survivor_count += take.size
        if survivor_count == 0:
            if exhausted:
                break
            continue

        # ---- sort the load and write it, sharpening as we go ----
        load = np.sort(np.concatenate(survivors))
        runs += 1
        written = 0
        cursor = 0
        truncated = False
        for index, position in enumerate(positions):
            if position > load.size:
                break
            cutoff = cutoff_filter.cutoff_key
            segment_end = position
            if cutoff is not None:
                writable = int(np.searchsorted(load[cursor:segment_end],
                                               cutoff, side="right"))
                if cursor + writable < segment_end:
                    written += writable
                    truncated = True
                    break
            written += segment_end - cursor
            size = position - (positions[index - 1] if index else 0)
            cutoff_filter.insert(Bucket(boundary_key=float(load[position - 1]),
                                        size=size))
            cursor = segment_end
        if not truncated and cursor < load.size:
            cutoff = cutoff_filter.cutoff_key
            tail = load[cursor:]
            if cutoff is not None:
                written += int(np.searchsorted(tail, cutoff, side="right"))
            else:
                written += tail.size
        rows_spilled += written
        if exhausted and pending.size == 0 and produced >= input_rows:
            break

    return AnalysisResult(
        input_rows=input_rows,
        k=k,
        memory_rows=memory_rows,
        buckets_per_run=buckets_per_run,
        runs=runs,
        rows_spilled=rows_spilled,
        final_cutoff=cutoff_filter.cutoff_key,
    )
