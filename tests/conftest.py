"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.rows.schema import single_key_schema
from repro.rows.sortspec import SortSpec
from repro.storage.spill import SpillManager


@pytest.fixture
def key_schema():
    """A single float ``key`` column."""
    return single_key_schema()


@pytest.fixture
def key_spec(key_schema):
    """Ascending sort on the ``key`` column."""
    return SortSpec(key_schema, ["key"])


@pytest.fixture
def spill():
    """A fresh in-memory spill manager, closed after the test."""
    manager = SpillManager()
    yield manager
    manager.close()


@pytest.fixture
def rng():
    """Seeded RNG for reproducible random inputs."""
    return random.Random(0xC0FFEE)


def make_rows(rng: random.Random, count: int) -> list[tuple]:
    """``count`` single-column rows with uniform float keys."""
    return [(rng.random(),) for _ in range(count)]


@pytest.fixture
def uniform_rows(rng):
    """10,000 uniform keys-only rows."""
    return make_rows(rng, 10_000)
