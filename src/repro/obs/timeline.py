"""The cutoff timeline: live ``rows_seen → cutoff key`` convergence data.

The paper's Table 1 tabulates how the cutoff key sharpens as input
streams through the operator — the single plot that explains *why*
histogram filtering wins.  A :class:`CutoffTimeline` records exactly
that trajectory from a real execution (row, batch, or vectorized
engine): every establishment/refinement of the cutoff becomes one
:class:`CutoffEvent` carrying the rows consumed so far, the new
*normalized* cutoff key, and the elapsed monotonic time.

Keys are normalized sort keys (descending numeric orders arrive
negated, per :class:`~repro.rows.sortspec.SortSpec`), so "sharpening"
always means *non-increasing* regardless of query direction — which is
what :meth:`CutoffTimeline.is_monotone` checks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class CutoffEvent:
    """One establishment or refinement of the cutoff key."""

    #: Input rows the operator had consumed when the cutoff moved.
    rows_seen: int
    #: The new cutoff, as a normalized sort key (tightens downward).
    cutoff_key: Any
    #: Monotonic seconds since the timeline started.
    elapsed_seconds: float


class CutoffTimeline:
    """An append-only record of cutoff refinements for one execution."""

    def __init__(self):
        self._epoch = time.perf_counter()
        self.events: list[CutoffEvent] = []

    def record(self, rows_seen: int, cutoff_key: Any) -> None:
        """Append one refinement event."""
        self.events.append(CutoffEvent(
            rows_seen=rows_seen,
            cutoff_key=cutoff_key,
            elapsed_seconds=time.perf_counter() - self._epoch,
        ))

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def final_cutoff(self) -> Any:
        """The last recorded cutoff key, or ``None``."""
        return self.events[-1].cutoff_key if self.events else None

    def is_monotone(self) -> bool:
        """Whether the trajectory only ever tightened.

        Sound cutoff management never loosens: normalized keys must be
        non-increasing and ``rows_seen`` non-decreasing.  A ``False``
        here is always a bug in the filter.
        """
        for before, after in zip(self.events, self.events[1:]):
            if after.cutoff_key > before.cutoff_key:
                return False
            if after.rows_seen < before.rows_seen:
                return False
        return True

    def as_dicts(self) -> list[dict[str, Any]]:
        """JSON-friendly export (e.g. to feed a convergence plot)."""
        return [
            {
                "rows_seen": event.rows_seen,
                "cutoff_key": event.cutoff_key,
                "elapsed_seconds": event.elapsed_seconds,
            }
            for event in self.events
        ]

    def describe(self) -> str:
        """One-line summary for logs and EXPLAIN ANALYZE footers."""
        if not self.events:
            return "cutoff never established"
        first, last = self.events[0], self.events[-1]
        return (
            f"cutoff established at {first.cutoff_key!r} after "
            f"{first.rows_seen} rows, refined {len(self.events) - 1} "
            f"times to {last.cutoff_key!r} by row {last.rows_seen}"
        )
