"""Tests for the full report path (figures, charts, appendix table)."""

import pytest

from repro.experiments.harness import Scale
from repro.experiments.report import generate_report
from repro.experiments.vectorized_validation import render, run_point

TINY = Scale("tiny", 100_000)


class TestFullReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(scale=TINY, include_figures=True,
                               include_vectorized=False)

    def test_all_sections_present(self, report):
        for section in ("Table 1", "Table 2", "Table 3", "Table 4",
                        "Table 5", "Figure 2", "Figure 3", "Figure 4",
                        "Figure 5", "Figure 6", "Section 5.5",
                        "Section 5.2"):
            assert section in report

    def test_charts_embedded(self, report):
        assert "```text" in report
        assert "speedup (x)" in report

    def test_paper_claims_quoted(self, report):
        assert "Paper claim:" in report

    def test_cliff_jump_summarized(self, report):
        assert "cost jump across the memory boundary" in report


class TestVectorizedValidationUnits:
    def test_run_point_tiny(self):
        point = run_point(200_000, 15_000, 3_500, seed=1)
        assert point.ours_spilled < point.baseline_spilled
        assert point.ours_spilled < point.optimized_spilled
        assert point.spill_reduction > 1.0
        assert point.speedup_vs_optimized > 0.5

    def test_render(self):
        point = run_point(100_000, 15_000, 3_500, seed=2)
        text = render([point])
        assert "vs full sort" in text
        assert "100,000" in text
