"""Page layout for spilled rows.

Runs are written to secondary storage in fixed-capacity pages so that the
number of storage requests (the expensive unit in a disaggregated setting)
is proportional to bytes, not rows.  A :class:`Page` holds a batch of rows
plus its estimated byte size; :class:`PageBuilder` packs consecutive rows
until the byte capacity is reached.

Serialization lives in :mod:`repro.storage.codec` (typed columnar format
with a pickle fallback); the in-memory backend keeps the row lists
directly and only uses the byte accounting.

A page can also carry the *normalized sort keys* of its rows (populated
by :class:`~repro.sorting.runs.RunWriter` at write time, or recomputed
page-at-a-time on the merge read path).  Cached keys are never
serialized — they are derivable — but they let the merge heap compare
precomputed keys instead of invoking the comparator once per row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import SpillError

#: Default page capacity: 64 KiB, a common unit for log-structured writes.
DEFAULT_PAGE_BYTES = 64 * 1024


@dataclass
class Page:
    """A batch of rows with byte-size accounting.

    ``keys``, when present, parallels ``rows`` with each row's normalized
    sort key (a merge-side cache; excluded from serialization).

    ``codes``, when present, parallels ``rows`` with each row's
    offset-value code relative to the previous row of the run (see
    :mod:`repro.sorting.ovc`).  Unlike keys, codes *are* persisted by the
    typed page codec — they are cheap on the wire (8 bytes/row) and,
    recomputing them on read would re-touch exactly the key bytes the
    codes exist to avoid.
    """

    rows: list[tuple]
    byte_size: int
    keys: list | None = None
    codes: list[int] | None = None

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class PageBuilder:
    """Packs rows into pages of bounded byte size.

    Args:
        page_bytes: Byte capacity per page.
        row_size: Callable estimating the byte footprint of one row;
            defaults to a cheap length-insensitive constant suitable for
            synthetic keys-only workloads.
    """

    page_bytes: int = DEFAULT_PAGE_BYTES
    row_size: Callable[[Sequence[Any]], int] = field(
        default=lambda row: 16 + 8 * len(row))

    def __post_init__(self) -> None:
        if self.page_bytes <= 0:
            raise SpillError("page capacity must be positive")
        self._rows: list[tuple] = []
        self._keys: list = []
        self._codes: list[int] = []
        self._bytes = 0

    @property
    def pending_rows(self) -> int:
        """Rows buffered but not yet emitted as a page."""
        return len(self._rows)

    def add(self, row: tuple, key: Any = None,
            code: int | None = None) -> Page | None:
        """Buffer ``row``; return a completed page when capacity is reached.

        A single row larger than the page capacity still gets its own page —
        oversized variable-length rows must remain spillable (this is one of
        the robustness problems of the pure priority-queue algorithm that
        Section 2.3 calls out).

        ``key``, when given, is the row's normalized sort key; a page whose
        every row carried one is emitted with its key cache populated.
        ``code`` likewise carries the row's offset-value code.
        """
        size = self.row_size(row)
        self._rows.append(row)
        if key is not None:
            self._keys.append(key)
        if code is not None:
            self._codes.append(code)
        self._bytes += size
        if self._bytes >= self.page_bytes:
            return self.flush()
        return None

    def extend(self, rows: Sequence[tuple],
               keys: Sequence | None = None,
               codes: Sequence[int] | None = None) -> list[Page]:
        """Buffer a batch of rows; return every page completed on the way.

        The batch equivalent of repeated :meth:`add` calls (identical
        page boundaries), amortizing the per-call overhead over a whole
        spill batch.  A trailing partial page stays buffered as usual.
        ``keys`` and ``codes``, when given, parallel ``rows``.
        """
        pages: list[Page] = []
        row_size = self.row_size
        if keys is not None:
            if codes is not None:
                for row, key, code in zip(rows, keys, codes):
                    self._rows.append(row)
                    self._keys.append(key)
                    self._codes.append(code)
                    self._bytes += row_size(row)
                    if self._bytes >= self.page_bytes:
                        pages.append(self.flush())
                return pages
            for row, key in zip(rows, keys):
                self._rows.append(row)
                self._keys.append(key)
                self._bytes += row_size(row)
                if self._bytes >= self.page_bytes:
                    pages.append(self.flush())
            return pages
        for row in rows:
            self._rows.append(row)
            self._bytes += row_size(row)
            if self._bytes >= self.page_bytes:
                pages.append(self.flush())
        return pages

    def flush(self) -> Page | None:
        """Emit whatever is buffered as a page, or ``None`` if empty."""
        if not self._rows:
            return None
        keys = self._keys if len(self._keys) == len(self._rows) else None
        codes = self._codes if len(self._codes) == len(self._rows) else None
        page = Page(rows=self._rows, byte_size=self._bytes, keys=keys,
                    codes=codes)
        self._rows = []
        self._keys = []
        self._codes = []
        self._bytes = 0
        return page
