"""The paper's published numbers, embedded for paper-vs-measured reports.

Tables are transcribed from the SIGMOD 2020 paper; figures are digitized to
their headline shapes (the paper reports relative improvements only, since
F1 Query absolute times are confidential).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Table 1 defaults: top 5,000 of 1,000,000 rows, memory for 1,000 rows.
TABLE1_INPUT = 1_000_000
TABLE1_K = 5_000
TABLE1_MEMORY = 1_000

#: Selected rows of Table 1: run -> (remaining input before the run,
#: cutoff key before the run, [decile keys; None = eliminated]).
TABLE1_ROWS = {
    1: (1_000_000, None,
        [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]),
    6: (995_000, None,
        [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]),
    7: (994_000, 0.9,
        [0.09, 0.18, 0.27, 0.36, 0.45, 0.54, 0.63, 0.72, None]),
    8: (992_889, 0.72,
        [0.072, 0.144, 0.216, 0.288, 0.36, 0.432, 0.504, 0.576, None]),
    9: (991_501, 0.6,
        [0.06, 0.12, 0.18, 0.24, 0.30, 0.36, 0.42, 0.48, None]),
    10: (989_835, 0.504,
         [0.0504, 0.1008, 0.1512, 0.2016, 0.252, 0.3024, 0.3528, 0.4032,
          None]),
    21: (937_767, 0.1,
         [0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, None]),
    39: (103_786, 0.0072,
         [0.000964, 0.001927, None, None, None, None, None, None, None]),
}

#: Table 2 (varying histogram size): paper bucket label ->
#: (runs, rows spilled, final cutoff, ratio).  Label 0 = no histogram:
#: the entire input is sorted.
TABLE2 = {
    0: (1_000, 1_000_000, None, 200.0),
    1: (66, 62_781, 0.015625, 3.13),
    5: (44, 39_150, 0.007373, 1.47),
    10: (39, 34_077, 0.0063, 1.26),
    20: (37, 31_568, 0.00567, 1.13),
    50: (35, 30_156, 0.00532, 1.06),
    100: (35, 29_780, 0.005162, 1.03),
    1000: (35, 29_258, 0.005014, 1.0),
}

#: Table 3 (varying output size, 10-bucket histograms):
#: k -> (runs, rows, cutoff, ratio).
TABLE3 = {
    2_000: (20, 14_858, 0.00245, 1.23),
    5_000: (39, 34_077, 0.0063, 1.26),
    10_000: (67, 62_072, 0.0126, 1.26),
    20_000: (113, 109_016, 0.025, 1.25),
    50_000: (222, 218_539, 0.06048, 1.21),
}

#: Table 3's last experiment re-run with 100 and 1,000 buckets:
#: paper bucket label -> (runs, rows, cutoff, ratio) at k = 50,000.
TABLE3_K50000_BY_BUCKETS = {
    10: (222, 218_539, 0.06048, 1.21),
    100: (204, 200_161, 0.050803, 1.01),
    1000: (202, 198_436, 0.050076, 1.0),
}

#: Table 4 (varying input size, 10-bucket histograms):
#: input rows -> (runs, rows, cutoff, ideal, ratio).
TABLE4 = {
    6_000: (6, 5_900, 0.9, 0.833333, 1.08),
    7_000: (7, 6_699, 0.8, 0.714286, 1.12),
    10_000: (9, 8_332, 0.532978, 0.5, 1.06),
    20_000: (13, 11_840, 0.288, 0.25, 1.15),
    50_000: (19, 16_690, 0.116482, 0.1, 1.16),
    100_000: (24, 20_627, 0.06174, 0.05, 1.23),
    200_000: (28, 24_638, 0.0315, 0.025, 1.26),
    500_000: (35, 30_008, 0.0126, 0.01, 1.26),
    1_000_000: (39, 34_077, 0.0063, 0.005, 1.26),
    2_000_000: (44, 38_188, 0.003175, 0.0025, 1.27),
    5_000_000: (50, 43_565, 0.00126, 0.001, 1.26),
    10_000_000: (55, 47_683, 0.000635, 0.0005, 1.27),
    20_000_000: (60, 51_735, 0.000318, 0.00025, 1.27),
    50_000_000: (66, 57_182, 0.000127, 0.0001, 1.27),
    100_000_000: (71, 61_235, 0.000064, 0.00005, 1.28),
}

#: Table 5 (varying input size, minimal one-bucket histograms):
#: input rows -> (runs, rows, cutoff, ideal, ratio).
TABLE5 = {
    6_000: (6, 6_000, 1.0, 0.833333, 1.2),
    7_000: (7, 7_000, 1.0, 0.714286, 1.41),
    10_000: (10, 9_500, 0.5, 0.5, 1.0),
    20_000: (15, 14_500, 0.5, 0.25, 2.0),
    50_000: (25, 24_000, 0.25, 0.1, 2.5),
    100_000: (34, 32_250, 0.125, 0.05, 2.5),
    200_000: (44, 41_125, 0.0625, 0.025, 2.5),
    500_000: (56, 53_437, 0.03125, 0.01, 3.13),
    1_000_000: (66, 62_781, 0.015625, 0.005, 3.13),
    2_000_000: (76, 72_203, 0.007812, 0.0025, 3.13),
    5_000_000: (90, 85_499, 0.003425, 0.001, 3.43),
    10_000_000: (100, 94_999, 0.001773, 0.0005, 3.55),
    20_000_000: (110, 104_500, 0.000903, 0.00025, 3.61),
    50_000_000: (123, 116_209, 0.000244, 0.0001, 2.44),
    100_000_000: (133, 125_708, 0.000122, 0.00005, 2.44),
}


@dataclass(frozen=True)
class FigureShape:
    """The qualitative claims a figure reproduction must match."""

    figure: str
    claim: str
    max_speedup: float | None = None
    max_spill_reduction: float | None = None


#: Headline shapes per evaluation figure (Section 5).
FIGURE_SHAPES = {
    "figure2": FigureShape(
        "Figure 2",
        "≈1x while k fits in memory; up to ~11x for k well beyond memory; "
        "declining again once k is a large fraction of the input; "
        "distribution-insensitive",
        max_speedup=11.0,
    ),
    "figure3": FigureShape(
        "Figure 3",
        "~1.1x at input ≈ 1.7*k rising to ~11x at input ≈ 66*k; "
        "spill reduction up to ~13x; identical across distributions",
        max_speedup=11.0,
        max_spill_reduction=13.0,
    ),
    "figure4": FigureShape(
        "Figure 4",
        "even a 1-bucket histogram achieves up to ~6.6x; 5 buckets close "
        "most of the gap to the 50-bucket default",
        max_speedup=6.6,
    ),
    "figure5": FigureShape(
        "Figure 5",
        "0 buckets = no elimination (1x); diminishing returns past ~50 "
        "buckets (<0.1x gained from 50 to 100)",
    ),
    "figure6": FigureShape(
        "Figure 6",
        "ours up to ~3x cheaper in GB*s; in-memory up to ~4x faster, only "
        "~1.59x faster at the largest input",
    ),
    "overhead": FigureShape(
        "Section 5.5",
        "~3% overhead on an adversarial input that sharpens the filter "
        "but never eliminates a row",
    ),
    "cliff": FigureShape(
        "Section 5.2 (PostgreSQL)",
        "an order-of-magnitude execution-time jump for the traditional "
        "algorithm when k crosses the memory capacity; no cliff for ours",
    ),
}


def paper_bucket_label_to_boundaries(label: int) -> int:
    """Map the paper's '#Buckets' label to this library's boundary count.

    Calibration against Tables 1/2/4/5 shows the paper's label counts the
    *intervals* a run is divided into (label 10 = nine decile boundaries),
    except label 1 which tracks the run median (one boundary).  Labels 0
    and 1 map to themselves; any other label maps to ``label - 1``.
    """
    if label <= 1:
        return label
    return label - 1
