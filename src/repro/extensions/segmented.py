"""Segmented execution for partially sorted inputs (Section 4.2).

When the input arrives sorted on a *prefix* of the ``ORDER BY`` columns,
the top-k can run segment by segment: all rows of a segment (one distinct
prefix value) sort before every row of later segments, so

* segments are consumed in order,
* each earlier segment contributes **all** of its rows to the output (it
  must be fully sorted on the remaining columns),
* the *last relevant segment* contributes only a top-m, which is where the
  histogram filtering applies, and
* every segment after the k-th output row is skipped entirely — never
  sorted, never spilled.

:class:`SegmentedTopK` implements exactly this, delegating the per-segment
work to :class:`~repro.core.topk.HistogramTopK` (which degrades gracefully
to a plain bounded sort when a whole segment is needed).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.core.policies import SizingPolicy
from repro.core.topk import HistogramTopK
from repro.errors import ConfigurationError
from repro.rows.sortspec import SortSpec
from repro.storage.spill import SpillManager
from repro.storage.stats import OperatorStats


class SegmentedTopK:
    """Top-k over an input clustered on a sort-order prefix.

    Args:
        segment_key: Callable extracting the *prefix* key a row is
            clustered by (rows with equal prefix arrive consecutively, in
            prefix sort order).
        remainder_key: Callable extracting the sort key for the remaining
            ``ORDER BY`` columns (the within-segment order).
        k: Requested total output rows.
        memory_rows: Memory budget per segment sort.
        spill_manager: Shared spill substrate (private one if omitted).
        sizing_policy: Histogram sizing policy for the last segment's
            filtered sort.

    Raises:
        ConfigurationError: for non-positive ``k`` / ``memory_rows``.
    """

    def __init__(
        self,
        segment_key: Callable[[tuple], Any],
        remainder_key: SortSpec | Callable[[tuple], Any],
        k: int,
        memory_rows: int,
        spill_manager: SpillManager | None = None,
        sizing_policy: SizingPolicy | None = None,
        stats: OperatorStats | None = None,
    ):
        if k <= 0:
            raise ConfigurationError("k must be positive")
        if memory_rows <= 0:
            raise ConfigurationError("memory_rows must be positive")
        self.segment_key = segment_key
        self.remainder_key = (remainder_key.key
                              if isinstance(remainder_key, SortSpec)
                              else remainder_key)
        self.k = k
        self.memory_rows = memory_rows
        self.spill_manager = spill_manager or SpillManager()
        self.sizing_policy = sizing_policy
        self.stats = stats or OperatorStats()
        self.stats.io = self.spill_manager.stats
        self.segments_processed = 0
        self.segments_skipped = 0

    def _segments(self, rows: Iterator[tuple]) -> Iterator[Iterator[tuple]]:
        """Split the clustered stream into per-segment sub-iterators.

        Each inner iterator must be fully consumed (or abandoned) before
        the next one is requested; unconsumed rows are drained lazily.
        """
        pushback: list[tuple] = []
        done = False

        def read() -> tuple | None:
            nonlocal done
            if pushback:
                return pushback.pop()
            row = next(rows, None)
            if row is None:
                done = True
            return row

        while not done:
            first = read()
            if first is None:
                return
            current_segment = self.segment_key(first)

            def segment_rows(first_row: tuple = first,
                             segment: Any = current_segment
                             ) -> Iterator[tuple]:
                yield first_row
                while True:
                    row = read()
                    if row is None:
                        return
                    if self.segment_key(row) != segment:
                        pushback.append(row)
                        return
                    yield row

            yield segment_rows()

    def execute(self, rows: Iterable[tuple]) -> Iterator[tuple]:
        """Yield the top k rows of the clustered stream, in full order."""
        produced = 0
        stream = iter(rows)
        for segment in self._segments(stream):
            if produced >= self.k:
                # Section 4.2: subsequent segments are ignored; drain the
                # stream without sorting (the scan itself is unavoidable).
                self.segments_skipped += 1
                for _row in segment:
                    self.stats.rows_consumed += 1
                continue
            remaining = self.k - produced
            operator = HistogramTopK(
                self.remainder_key,
                k=remaining,
                memory_rows=self.memory_rows,
                spill_manager=self.spill_manager,
                sizing_policy=self.sizing_policy,
                stats=self.stats,
            )
            self.segments_processed += 1
            for row in operator.execute(segment):
                produced += 1
                yield row
