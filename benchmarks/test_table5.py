"""Benchmark: Table 5 — minimal (median-only) histograms."""

import pytest

from repro.core.analysis import simulate_uniform
from repro.experiments.paper_data import TABLE5


@pytest.mark.parametrize("input_rows", [1_000_000, 100_000_000])
def test_table5_row(benchmark, input_rows):
    runs, rows, cutoff, _ideal, _ratio = TABLE5[input_rows]
    result = benchmark(simulate_uniform, input_rows, 5_000, 1_000, 1)
    assert result.runs == pytest.approx(runs, abs=1)
    assert result.rows_spilled == pytest.approx(rows, rel=0.01)
    assert result.effective_cutoff == pytest.approx(cutoff, rel=5e-3)


def test_table5_still_beats_traditional(benchmark):
    """Even the minimal histogram filters 99 7/8 % of a huge input."""
    result = benchmark(simulate_uniform, 100_000_000, 5_000, 1_000, 1)
    assert result.rows_spilled / 100_000_000 == pytest.approx(1 / 800,
                                                              rel=0.02)


def test_table5_vs_table4_doubling(benchmark):
    """Minimal histograms need roughly twice the runs of decile ones."""

    def both():
        return (simulate_uniform(1_000_000, 5_000, 1_000, 1),
                simulate_uniform(1_000_000, 5_000, 1_000, 9))

    minimal, decile = benchmark(both)
    assert 1.4 < minimal.runs / decile.runs < 2.2
