"""Large-scale validation with the vectorized engine.

The row engine caps practical experiment sizes around 1/1000 of the
paper's (pure-Python per-row costs); the vectorized engine lifts that to
1/20 scale — operator memory of 350,000 rows, k = 1,500,000, inputs up to
100,000,000 rows — only a factor 20 from the production deployment the
paper measured.  This module sweeps input sizes at that scale, comparing
the histogram algorithm against a full vectorized external sort, and
reports the same speedup/spill-reduction series as Figure 3.

The point of the exercise: demonstrate that the comparative shapes
measured at 1/1000 scale (and claimed scale-invariant in DESIGN.md)
persist across a 50x change of scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storage.costmodel import CostModel, SCALED_COST_MODEL
from repro.vectorized.baselines import VectorizedOptimizedTopK
from repro.vectorized.topk import VectorizedHistogramTopK

#: Paper sizes divided by this give the validation scale.
DEFAULT_SCALE_DIVISOR = 20


@dataclass
class VectorizedPoint:
    """One input-size measurement of the large-scale sweep."""

    input_rows: int
    k: int
    memory_rows: int
    ours_spilled: int
    baseline_spilled: int
    ours_seconds: float
    baseline_seconds: float
    optimized_spilled: int = 0
    optimized_seconds: float = 0.0

    @property
    def spill_reduction(self) -> float:
        """Reduction vs a full external sort (the traditional baseline)."""
        return self.baseline_spilled / max(self.ours_spilled, 1)

    @property
    def speedup(self) -> float:
        """Speedup vs a full external sort."""
        return self.baseline_seconds / max(self.ours_seconds, 1e-12)

    @property
    def spill_reduction_vs_optimized(self) -> float:
        """Reduction vs the early-merge optimized baseline [Graefe'08]."""
        return self.optimized_spilled / max(self.ours_spilled, 1)

    @property
    def speedup_vs_optimized(self) -> float:
        return self.optimized_seconds / max(self.ours_seconds, 1e-12)


def _chunks(input_rows: int, seed: int, chunk_rows: int = 1 << 20):
    """Uniform keys streamed in seeded chunks (nothing materialized)."""
    produced = 0
    index = 0
    while produced < input_rows:
        count = min(chunk_rows, input_rows - produced)
        rng = np.random.default_rng(seed + index)
        yield rng.random(count)
        produced += count
        index += 1


def run_point(
    input_rows: int,
    k: int,
    memory_rows: int,
    seed: int = 0,
    cost_model: CostModel = SCALED_COST_MODEL,
    row_bytes: int = 143,
) -> VectorizedPoint:
    """Measure ours vs full-sort on one input size.

    ``row_bytes`` scales the byte accounting to payload-carrying rows so
    simulated times stay comparable with the row-engine experiments.
    """
    scale = row_bytes / 8  # VectorRunStore charges 8 B per key

    def rescale(stats):
        stats.io.bytes_written = int(stats.io.bytes_written * scale)
        stats.io.bytes_read = int(stats.io.bytes_read * scale)
        return stats

    ours = VectorizedHistogramTopK(k=k, memory_rows=memory_rows)
    ours.execute_keys(_chunks(input_rows, seed))
    ours_stats = rescale(ours.stats)

    baseline = VectorizedHistogramTopK(k=k, memory_rows=memory_rows,
                                       buckets_per_run=0)
    baseline.execute_keys(_chunks(input_rows, seed))
    baseline_stats = rescale(baseline.stats)

    optimized = VectorizedOptimizedTopK(k=k, memory_rows=memory_rows)
    optimized.execute_keys(_chunks(input_rows, seed))
    optimized_stats = rescale(optimized.stats)

    return VectorizedPoint(
        input_rows=input_rows,
        k=k,
        memory_rows=memory_rows,
        ours_spilled=ours_stats.io.rows_spilled,
        baseline_spilled=baseline_stats.io.rows_spilled,
        ours_seconds=cost_model.total_seconds(ours_stats),
        baseline_seconds=cost_model.total_seconds(baseline_stats),
        optimized_spilled=optimized_stats.io.rows_spilled,
        optimized_seconds=cost_model.total_seconds(optimized_stats),
    )


def sweep(
    scale_divisor: int = DEFAULT_SCALE_DIVISOR,
    input_multiples: tuple[float, ...] = (5 / 3, 5, 50 / 3, 200 / 3),
    seed: int = 0,
) -> list[VectorizedPoint]:
    """The Figure 3 input sweep at 1/``scale_divisor`` of paper sizes."""
    memory_rows = 7_000_000 // scale_divisor
    k = 30_000_000 // scale_divisor
    return [run_point(int(k * multiple), k, memory_rows, seed=seed)
            for multiple in input_multiples]


def render(points: list[VectorizedPoint]) -> str:
    """Text table of the sweep."""
    header = (f"{'input rows':>14} {'ours spilled':>13} "
              f"{'vs full sort':>13} {'vs optimized':>13}")
    lines = [header, "-" * len(header)]
    for point in points:
        lines.append(
            f"{point.input_rows:>14,} {point.ours_spilled:>13,} "
            f"{point.spill_reduction:>11.2f}x "
            f"{point.spill_reduction_vs_optimized:>11.2f}x")
    return "\n".join(lines)
