"""Mini Volcano-style query engine: SQL front end, planner, operators."""

from repro.engine.operators import (
    Filter,
    InMemorySort,
    Limit,
    Operator,
    Project,
    Table,
    TableScan,
    TopK,
    TOPK_ALGORITHMS,
)
from repro.engine.planner import Planner
from repro.engine.session import Database, QueryResult
from repro.engine.sql import (
    Comparison,
    OrderItem,
    ParsedQuery,
    parse,
    tokenize,
)

__all__ = [
    "Database",
    "QueryResult",
    "Planner",
    "parse",
    "tokenize",
    "ParsedQuery",
    "Comparison",
    "OrderItem",
    "Operator",
    "Table",
    "TableScan",
    "Filter",
    "Project",
    "Limit",
    "InMemorySort",
    "TopK",
    "TOPK_ALGORITHMS",
]
