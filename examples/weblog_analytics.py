"""Web-log analytics: the paper's motivating workload, via SQL.

"An engineer at Twitter might want to perform trend analysis on the 10%
most important tweets" (Section 1).  This example builds a synthetic web
request log whose latency column follows a log-normal distribution (the
paper's model for dwell times), registers it with the mini SQL engine, and
asks operational questions whose answers need top-k over more rows than
the operator's memory holds:

* the slowest 10% of requests (latency DESC, k >> memory),
* the fastest responses for one endpoint (WHERE + top-k),
* a paged drill-down (LIMIT/OFFSET).

Run:
    python examples/weblog_analytics.py
"""

import random

from repro import Column, ColumnType, Schema
from repro.datagen.distributions import LOGNORMAL
from repro.engine import Database

REQUEST_LOG = Schema([
    Column("ts", ColumnType.INT64),
    Column("endpoint", ColumnType.STRING),
    Column("status", ColumnType.INT64),
    Column("latency_ms", ColumnType.FLOAT64),
    Column("bytes_sent", ColumnType.INT64),
])

ENDPOINTS = ("/search", "/feed", "/profile", "/upload", "/api/v2/items")


def build_log(rows: int, seed: int = 0) -> list[tuple]:
    """A synthetic request log with log-normal latencies."""
    rng = random.Random(seed)
    latencies = LOGNORMAL.sample(rows, seed=seed) * 12.0  # ms scale
    log = []
    for index in range(rows):
        log.append((
            1_700_000_000 + index,
            rng.choice(ENDPOINTS),
            rng.choices((200, 404, 500), weights=(94, 4, 2))[0],
            float(latencies[index]),
            rng.randrange(200, 64_000),
        ))
    return log


def main() -> None:
    rows = 400_000
    log = build_log(rows, seed=3)
    # The operator gets memory for 5,000 rows; the slowest-10% query needs
    # 40,000 — the exact regime the paper targets.
    db = Database(memory_rows=5_000)
    db.register_table("REQUESTS", REQUEST_LOG, log)

    k = rows // 10
    slowest = db.sql(
        f"SELECT ts, endpoint, latency_ms FROM REQUESTS "
        f"ORDER BY latency_ms DESC LIMIT {k}")
    print(f"slowest 10% of {rows:,} requests -> {len(slowest):,} rows")
    print(f"  worst latency: {slowest.rows[0][2]:,.1f} ms")
    print(f"  10th-percentile threshold: {slowest.rows[-1][2]:,.1f} ms")
    print(f"  rows spilled: {slowest.stats.io.rows_spilled:,} "
          f"(vs {rows:,} for a full external sort)")
    print(f"  input eliminated early: "
          f"{slowest.stats.elimination_fraction:.1%}")
    print(f"  simulated execution time: "
          f"{slowest.simulated_seconds():.3f} s\n")

    fastest_search = db.sql(
        "SELECT ts, latency_ms FROM REQUESTS "
        "WHERE endpoint = '/search' AND status = 200 "
        "ORDER BY latency_ms LIMIT 20")
    print("fastest 20 successful /search requests:")
    for ts, latency in fastest_search.rows[:5]:
        print(f"  ts={ts}  {latency:.3f} ms")
    print("  ...\n")

    # Paged drill-down over the slow tail: page 3 of 50-row pages.
    page = db.sql(
        "SELECT ts, endpoint, latency_ms FROM REQUESTS "
        "ORDER BY latency_ms DESC LIMIT 50 OFFSET 150")
    print("page 3 (rows 151-200) of the slow-request report:")
    for ts, endpoint, latency in page.rows[:5]:
        print(f"  {endpoint:<14} {latency:>10.1f} ms")
    print("  ...")
    print("\nplan for the slowest-10% query:")
    print(db.explain(
        f"SELECT * FROM REQUESTS ORDER BY latency_ms DESC LIMIT {k}"))


if __name__ == "__main__":
    main()
