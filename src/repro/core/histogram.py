"""Histogram buckets and per-run histogram construction.

A histogram bucket (Section 3.1.2) is defined by its *boundary key* — the
maximum key of the rows it represents — and its *size* — how many spilled
rows it stands for.  Buckets are created while a run is being written: every
``stride`` spilled rows, the key just written becomes a boundary and a
bucket of size ``stride`` is pushed to the cutoff filter's priority queue.

The rows written after the last boundary of a run are *not* represented by
any bucket.  This is deliberately conservative: the filter's correctness
argument needs ``Σ bucket.size`` to never overstate how many rows are known
to sort at or below the tracked boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.policies import SizingPolicy


@dataclass(frozen=True)
class Bucket:
    """One histogram bucket: ``size`` rows with keys ≤ ``boundary_key``."""

    boundary_key: Any
    size: int

    def __repr__(self) -> str:
        return f"Bucket(≤{self.boundary_key!r} ×{self.size})"


class RunHistogramBuilder:
    """Builds a histogram incrementally from one run's spilled rows.

    The builder is fed every written row via :meth:`add` (wired to the run
    writer's ``on_spill`` hook) and emits finished buckets to ``sink`` —
    in practice :meth:`repro.core.cutoff.CutoffFilter.insert`.

    Args:
        policy: Sizing policy deciding the bucket stride and cap.
        expected_run_rows: Best-effort estimate of the run's final length,
            from which the policy derives the stride (Section 5.1.2: "a
            best effort is made to decide the target number of histogram
            buckets collected from each run").
        sink: Receiver of emitted :class:`Bucket` objects.
    """

    def __init__(
        self,
        policy: SizingPolicy,
        expected_run_rows: int,
        sink: Callable[[Bucket], None],
    ):
        self._sink = sink
        self._stride = policy.stride(expected_run_rows)
        self._cap = policy.max_buckets(expected_run_rows)
        self._rows_since_boundary = 0
        self._emitted = 0

    @property
    def enabled(self) -> bool:
        """False when the policy collects no histogram at all."""
        return self._stride is not None

    def add(self, key: Any) -> None:
        """Record one spilled row; may emit a bucket bounded by ``key``."""
        if self._stride is None:
            return
        if self._cap is not None and self._emitted >= self._cap:
            return
        self._rows_since_boundary += 1
        if self._rows_since_boundary >= self._stride:
            self._sink(Bucket(boundary_key=key, size=self._rows_since_boundary))
            self._rows_since_boundary = 0
            self._emitted += 1

    def close(self) -> None:
        """Finish the run: the partial tail bucket is discarded."""
        self._rows_since_boundary = 0
        self._emitted = 0
