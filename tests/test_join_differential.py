"""Differential oracle suite for rank-aware joins (ISSUE 8).

A brute-force in-memory reference — nested-loop join in input order,
NULL-rejecting WHERE applied post-join, stable sort by the query's
:class:`~repro.rows.sortspec.SortSpec` key, slice — is checked
byte-identical against the engine over every axis the join planner can
vary:

* join type (INNER / LEFT) and physical method (hash / sort-merge),
* grouped (``LIMIT k PER g``) vs. ungrouped top-k,
* cutoff pushdown pinned on / off / costed,
* row / batch / vectorized physical top-k paths,
* in-memory vs. spilling regimes (tiny ``memory_rows`` budgets),

with duplicate join keys, empty sides, and NULL join/group keys arising
by construction from the strategies in :mod:`tests.test_strategies`.

The semantics the reference encodes (and therefore pins):

* NULL join keys never match — not even NULL = NULL (both joins drop
  NULL-keyed build rows and NULL-keyed probe rows match nothing).
* A LEFT join emits unmatched left rows padded with NULLs; WHERE
  predicates naming right-side columns evaluate *after* the join under
  three-valued logic, so padding rows are rejected (NULL compares to
  nothing).
* Grouped top-k over a join emits groups in group-value order with the
  NULL group last, rows within each group in sort-key order, at most
  ``k`` per group.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.session import Database
from repro.engine.operators import VectorizedTopK
from repro.rows.sortspec import SortColumn, SortSpec
from tests.test_strategies import (
    JOIN_OUT_SCHEMA,
    LEFT_SCHEMA,
    RIGHT_SCHEMA,
    joined_tables,
    left_rows,
    unique_key_tables,
)

# Column indexes in the join-output row layout
# (LID, JK, LV, RID, RK, RV) — see tests.test_strategies.
JK, LV = 1, 2
RID, RK = 3, 4


# -- the brute-force reference -------------------------------------------


def nested_loop_join(left, right, join_type):
    """All join-output rows, in left-input x right-input order."""
    out = []
    pad = (None,) * len(RIGHT_SCHEMA.columns)
    for lrow in left:
        key = lrow[JK]
        matches = ([rrow for rrow in right
                    if rrow[1] is not None and rrow[1] == key]
                   if key is not None else [])
        if matches:
            out.extend(lrow + rrow for rrow in matches)
        elif join_type == "left":
            out.append(lrow + pad)
    return out


def apply_where(rows, predicates):
    """Post-join WHERE under three-valued logic (NULL -> rejected)."""

    def keep(row):
        for index, op, value in predicates:
            field = row[index]
            if field is None:
                return False
            if op == ">=" and not field >= value:
                return False
            if op == "<" and not field < value:
                return False
        return True

    return [row for row in rows if keep(row)]


def output_spec(order_columns):
    return SortSpec(JOIN_OUT_SCHEMA,
                    [SortColumn(name, ascending=asc)
                     for name, asc in order_columns])


def reference_topk(joined, order_columns, k):
    spec = output_spec(order_columns)
    return sorted(joined, key=spec.key)[:k]


def reference_grouped(joined, order_columns, group_index, k):
    """Groups in value order (NULL group last), sorted rows, k each."""
    spec = output_spec(order_columns)
    groups: dict = {}
    for row in joined:
        groups.setdefault(row[group_index], []).append(row)
    ordered = sorted(groups,
                     key=lambda g: (g is None, g if g is not None else 0))
    out = []
    for group in ordered:
        out.extend(sorted(groups[group], key=spec.key)[:k])
    return out


def make_db(left, right, **kwargs):
    db = Database(**kwargs)
    db.register_table("L", LEFT_SCHEMA, left, row_count=len(left))
    db.register_table("R", RIGHT_SCHEMA, right, row_count=len(right))
    return db


# -- differential legs ----------------------------------------------------


@given(tables=joined_tables(),
       k=st.integers(1, 30),
       memory=st.sampled_from([4, 32, 100_000]),
       join_method=st.sampled_from(["auto", "hash", "merge"]),
       pushdown=st.sampled_from([None, True, False]),
       path=st.sampled_from([None, "row", "batch"]))
@settings(max_examples=60, deadline=None)
def test_inner_join_topk_differential(tables, k, memory, join_method,
                                      pushdown, path):
    """Inner top-k over a join: every physical combination, one answer."""
    left, right = tables
    joined = nested_loop_join(left, right, "inner")
    oracle = reference_topk(joined, [("LV", True), ("LID", True),
                                     ("RID", True)], k)
    db = make_db(left, right, memory_rows=memory,
                 join_method=join_method, pushdown=pushdown,
                 force_path=path)
    result = db.sql("SELECT * FROM L JOIN R ON L.JK = R.RK "
                    f"ORDER BY LV, LID, RID LIMIT {k}")
    assert result.rows == oracle


@given(tables=joined_tables(),
       k=st.integers(1, 30),
       memory=st.sampled_from([4, 100_000]),
       join_method=st.sampled_from(["hash", "merge"]),
       where_left=st.one_of(st.none(), st.integers(0, 45)),
       where_right=st.one_of(st.none(), st.integers(0, 10)))
@settings(max_examples=50, deadline=None)
def test_left_join_differential(tables, k, memory, join_method,
                                where_left, where_right):
    """LEFT join with NULL padding, left-pushed and residual WHERE."""
    left, right = tables
    joined = nested_loop_join(left, right, "left")
    predicates = []
    clauses = []
    if where_left is not None:
        predicates.append((LV, ">=", where_left))
        clauses.append(f"LV >= {where_left}")
    if where_right is not None:
        # Right-side predicate: must stay post-join (rejects padding).
        predicates.append((RID, "<", where_right))
        clauses.append(f"RID < {where_right}")
    joined = apply_where(joined, predicates)
    oracle = reference_topk(joined, [("LV", True), ("LID", True),
                                     ("RID", True)], k)
    where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
    db = make_db(left, right, memory_rows=memory,
                 join_method=join_method)
    result = db.sql(f"SELECT * FROM L LEFT JOIN R ON L.JK = R.RK{where} "
                    f"ORDER BY LV, LID, RID LIMIT {k}")
    assert result.rows == oracle


@given(tables=joined_tables(),
       k=st.integers(1, 25),
       memory=st.sampled_from([4, 24, 100_000]),
       join_method=st.sampled_from(["auto", "hash", "merge"]))
@settings(max_examples=50, deadline=None)
def test_pushdown_is_semantically_invisible(tables, k, memory,
                                            join_method):
    """The safety property: pushdown on is byte-identical to pushdown
    off, and never spills *more* (it can only drop sort-side input)."""
    left, right = tables
    # RID completes the total order: without it a left row with several
    # matches has tied (LV, LID) outputs, and the external sort is not
    # stable across spills, so the nested-loop reference could disagree.
    sql = ("SELECT * FROM L JOIN R ON L.JK = R.RK "
           f"ORDER BY LV, LID, RID LIMIT {k}")

    def run(pushdown):
        db = make_db(left, right, memory_rows=memory,
                     join_method=join_method, pushdown=pushdown)
        return db.sql(sql)

    off = run(False)
    on = run(True)
    assert on.rows == off.rows
    assert on.stats.io.rows_spilled <= off.stats.io.rows_spilled
    # The reference agrees with both.
    joined = nested_loop_join(left, right, "inner")
    assert off.rows == reference_topk(
        joined, [("LV", True), ("LID", True), ("RID", True)], k)


@given(tables=joined_tables(),
       k=st.integers(1, 8),
       memory=st.sampled_from([4, 100_000]),
       join_type=st.sampled_from(["inner", "left"]),
       descending=st.booleans())
@settings(max_examples=50, deadline=None)
def test_grouped_topk_over_join_differential(tables, k, memory,
                                             join_type, descending):
    """``LIMIT k PER JK`` over a join, including the NULL group."""
    left, right = tables
    joined = nested_loop_join(left, right, join_type)
    order_columns = [("LV", not descending), ("LID", True), ("RID", True)]
    oracle = reference_grouped(joined, order_columns, JK, k)
    op = "LEFT JOIN" if join_type == "left" else "JOIN"
    order = "LV DESC" if descending else "LV"
    db = make_db(left, right, memory_rows=memory)
    result = db.sql(f"SELECT * FROM L {op} R ON L.JK = R.RK "
                    f"ORDER BY {order}, LID, RID LIMIT {k} PER JK")
    assert result.rows == oracle


@given(tables=unique_key_tables(),
       k=st.integers(1, 40),
       memory=st.sampled_from([8, 100_000]),
       pushdown=st.sampled_from([None, True, False]))
@settings(max_examples=40, deadline=None)
def test_vectorized_path_over_join_differential(tables, k, memory,
                                                pushdown):
    """Single numeric ORDER BY column: the vectorized top-k lowering
    over a join agrees with the reference (unique keys by construction,
    so the total order needs no tiebreak)."""
    left, right = tables
    joined = nested_loop_join(left, right, "inner")
    oracle = reference_topk(joined, [("LV", True)], k)
    db = make_db(left, right, memory_rows=memory,
                 force_path="vectorized", pushdown=pushdown)
    result = db.sql("SELECT * FROM L JOIN R ON L.JK = R.RK "
                    f"ORDER BY LV LIMIT {k}")
    assert result.rows == oracle

    def has_vectorized(node):
        return isinstance(node, VectorizedTopK) or any(
            has_vectorized(child) for child in node.children())

    assert has_vectorized(result.plan)


@given(tables=joined_tables(),
       join_method=st.sampled_from(["hash", "merge"]),
       join_type=st.sampled_from(["inner", "left"]))
@settings(max_examples=40, deadline=None)
def test_join_without_order_by_is_the_same_multiset(tables, join_method,
                                                    join_type):
    """No ORDER BY: both physical joins emit the reference *multiset*;
    the hash join additionally preserves probe (left-input) order."""
    left, right = tables
    joined = nested_loop_join(left, right, join_type)
    op = "LEFT JOIN" if join_type == "left" else "JOIN"
    db = make_db(left, right, join_method=join_method)
    result = db.sql(f"SELECT * FROM L {op} R ON L.JK = R.RK")
    if join_method == "hash":
        assert result.rows == joined
    else:
        key = output_spec([("LID", True), ("RID", True)]).key
        assert sorted(result.rows, key=key) == sorted(joined, key=key)


# -- streaming merge + fused aggregation legs (ISSUE 10) ------------------


@given(tables=joined_tables(),
       k=st.integers(1, 25),
       memory=st.sampled_from([4, 24]),
       join_type=st.sampled_from(["inner", "left"]))
@settings(max_examples=50, deadline=None)
def test_streaming_merge_pushdown_differential(tables, k, memory,
                                               join_type):
    """The streaming merge join under spill-forcing memory budgets:
    pushdown on and off are both byte-identical to the nested-loop
    oracle, and on never spills more (the run-generation publisher can
    only remove sort-side input)."""
    left, right = tables
    joined = nested_loop_join(left, right, join_type)
    oracle = reference_topk(joined, [("LV", True), ("LID", True),
                                     ("RID", True)], k)
    op = "LEFT JOIN" if join_type == "left" else "JOIN"
    sql = (f"SELECT * FROM L {op} R ON L.JK = R.RK "
           f"ORDER BY LV, LID, RID LIMIT {k}")

    def run(pushdown):
        db = make_db(left, right, memory_rows=memory,
                     join_method="merge", pushdown=pushdown)
        return db.sql(sql)

    off = run(False)
    on = run(True)
    assert off.rows == oracle
    assert on.rows == oracle
    assert on.stats.io.rows_spilled <= off.stats.io.rows_spilled


def reference_aggregate(rows):
    """GROUP BY JK with every aggregate, groups in value order (NULL
    last), AVG as one exact-int division — the engine's pinned
    arithmetic."""
    groups: dict = {}
    for _lid, jk, lv in rows:
        groups.setdefault(jk, []).append(lv)
    ordered = sorted(groups,
                     key=lambda g: (g is None, g if g is not None else 0))
    out = []
    for group in ordered:
        values = groups[group]
        total = sum(values)
        out.append((group, len(values), total, min(values), max(values),
                    total / len(values)))
    return out


AGGREGATE_SQL = ("SELECT JK, COUNT(*), SUM(LV), MIN(LV), MAX(LV), "
                 "AVG(LV) FROM L GROUP BY JK")


@given(rows=left_rows(max_size=120),
       memory=st.sampled_from([2, 8, 100_000]))
@settings(max_examples=50, deadline=None)
def test_fused_aggregation_differential(rows, memory):
    """Run-generation-fused GROUP BY vs the post-sort pass vs the
    legacy in-memory hash: identical outputs (AVG bit-identical by
    exact-int accumulation), and fusion never spills more than the
    post-sort pass — partial aggregates are at most one row per
    (group, run), raw rows are one per input row."""
    oracle = reference_aggregate(rows)
    results = {}
    for fusion in ("rungen", "postsort", "hash"):
        db = make_db(rows, [], memory_rows=memory,
                     aggregate_fusion=fusion)
        results[fusion] = db.sql(AGGREGATE_SQL)
    for fusion, result in results.items():
        assert result.rows == oracle, fusion
    assert (results["rungen"].stats.io.rows_spilled
            <= results["postsort"].stats.io.rows_spilled)


# -- deterministic edge legs ---------------------------------------------


class TestEdges:
    def test_both_sides_empty(self):
        db = make_db([], [])
        assert db.sql("SELECT * FROM L JOIN R ON L.JK = R.RK "
                      "ORDER BY LV LIMIT 5").rows == []
        assert db.sql("SELECT * FROM L LEFT JOIN R ON L.JK = R.RK "
                      "ORDER BY LV LIMIT 5").rows == []

    def test_empty_right_left_join_pads_everything(self):
        left = [(0, 1, 10), (1, None, 5)]
        db = make_db(left, [])
        result = db.sql("SELECT * FROM L LEFT JOIN R ON L.JK = R.RK "
                        "ORDER BY LV LIMIT 5")
        assert result.rows == [(1, None, 5, None, None, None),
                               (0, 1, 10, None, None, None)]

    def test_null_keys_never_match_even_null_to_null(self):
        left = [(0, None, 1)]
        right = [(0, None, 7)]
        db = make_db(left, right)
        assert db.sql("SELECT * FROM L JOIN R ON L.JK = R.RK "
                      "ORDER BY LV LIMIT 5").rows == []

    def test_duplicate_keys_cross_product(self):
        left = [(0, 3, 1), (1, 3, 2)]
        right = [(0, 3, 7), (1, 3, 8)]
        for method in ("hash", "merge"):
            db = make_db(left, right, join_method=method)
            result = db.sql("SELECT * FROM L JOIN R ON L.JK = R.RK "
                            "ORDER BY LV, LID, RID LIMIT 10")
            assert result.rows == nested_loop_join(left, right, "inner")

    def test_pushdown_actually_drops_rows_at_scale(self):
        """At engine scale the pushed filter measurably prunes the
        sort-side input before the join (the tentpole's point)."""
        import random

        rng = random.Random(5)
        left = [(i, rng.randrange(20), rng.randrange(100_000))
                for i in range(60_000)]
        right = [(j, j, j) for j in range(20)]
        db = make_db(left, right, memory_rows=2_000, pushdown=True)
        result = db.sql("SELECT * FROM L JOIN R ON L.JK = R.RK "
                        "ORDER BY LV LIMIT 100", explain_analyze=True)
        joined = nested_loop_join(left, right, "inner")
        assert result.rows == reference_topk(joined, [("LV", True)], 100)
        rendered = result.explain_analyze()
        assert "pushdown_rows_dropped" in rendered
        filters = [node for node in result.analysis.nodes()
                   if "pushdown_rows_dropped" in node.details]
        assert filters, rendered
        assert filters[0].details["pushdown_rows_dropped"] > 0

    def test_merge_pushdown_prunes_sort_side_spill_at_scale(self):
        """The tentpole: with the run-generation publisher wired, the
        pushed filter halves (at least) the sort side's spill volume
        under the streaming merge join, byte-identically."""
        import random

        rng = random.Random(5)
        left = [(i, rng.randrange(20), rng.randrange(100_000))
                for i in range(30_000)]
        right = [(j, j, j) for j in range(20)]
        joined = nested_loop_join(left, right, "inner")
        oracle = reference_topk(joined, [("LV", True), ("LID", True)],
                                100)
        sql = ("SELECT * FROM L JOIN R ON L.JK = R.RK "
               "ORDER BY LV, LID LIMIT 100")

        def run(pushdown):
            db = make_db(left, right, memory_rows=1_000,
                         join_method="merge", pushdown=pushdown)
            return db.sql(sql, explain_analyze=True)

        off = run(False)
        on = run(True)
        assert off.rows == oracle
        assert on.rows == oracle
        assert on.stats.io.rows_spilled * 2 <= off.stats.io.rows_spilled
        rendered = on.explain_analyze()
        assert "join_sort_spilled" in rendered
        assert "pushdown_rungen_publications" in rendered
        assert "pushdown_dropped_est_vs_actual" in rendered

    def test_fused_aggregation_spills_strictly_less_at_scale(self):
        """Fusion's point: spilled partial aggregates (≤ one row per
        group per run) undercut the post-sort pass's raw-row spill,
        with identical output."""
        import random

        rng = random.Random(7)
        # More distinct groups than the memory budget, so both modes
        # must spill — fusion spills partials, post-sort raw rows.
        rows = [(i, rng.randrange(5_000), rng.randrange(1_000))
                for i in range(20_000)]

        def run(fusion):
            db = make_db(rows, [], memory_rows=500,
                         aggregate_fusion=fusion)
            return db.sql(AGGREGATE_SQL, explain_analyze=True)

        fused = run("rungen")
        postsort = run("postsort")
        assert fused.rows == postsort.rows == reference_aggregate(rows)
        assert fused.stats.io.rows_spilled > 0
        assert (fused.stats.io.rows_spilled
                < postsort.stats.io.rows_spilled)
        rendered = fused.explain_analyze()
        assert "groups_collapsed_rungen" in rendered

    @pytest.mark.slow_join
    def test_disk_scale_differential(self):
        """A spilling-scale randomized leg kept out of the default run."""
        import random

        rng = random.Random(11)
        left = [(i, rng.choice([None] + list(range(50))),
                 rng.randrange(500)) for i in range(30_000)]
        right = [(j, rng.choice([None] + list(range(50))),
                  rng.randrange(10)) for j in range(200)]
        joined = nested_loop_join(left, right, "inner")
        oracle = reference_topk(
            joined, [("LV", True), ("LID", True), ("RID", True)], 500)
        for method in ("hash", "merge"):
            for pushdown in (False, True):
                db = make_db(left, right, memory_rows=300,
                             join_method=method, pushdown=pushdown)
                result = db.sql(
                    "SELECT * FROM L JOIN R ON L.JK = R.RK "
                    "ORDER BY LV, LID, RID LIMIT 500")
                assert result.rows == oracle
