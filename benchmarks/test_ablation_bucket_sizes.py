"""Ablation: approximate (conservatively quantized) bucket sizes.

Section 4.5 suggests approximate bucket sizes as an approximation lever;
the only safety requirement is that sizes are never overstated.  This
ablation feeds the filter power-of-two-rounded sizes and measures the
sharpness cost.
"""

from conftest import bench_workload
from repro.core.analysis import simulate_uniform
from repro.core.cutoff import CutoffFilter
from repro.core.histogram import Bucket
from repro.extensions.approximate import quantized_sink
import numpy as np


def _filter_sharpness(quantized: bool, seed: int = 0):
    """Final cutoff after feeding run histograms for a fixed workload."""
    rng = np.random.default_rng(seed)
    k = 1_500
    filt = CutoffFilter(k=k)
    sink = quantized_sink(filt.insert) if quantized else filt.insert
    for _run in range(60):
        run = np.sort(rng.random(700))
        for position in range(69, 700, 70):
            sink(Bucket(float(run[position]), 70))
    return filt


def test_ablation_exact_sizes(benchmark):
    filt = benchmark(_filter_sharpness, False)
    assert filt.is_established


def test_ablation_quantized_sizes(benchmark):
    filt = benchmark(_filter_sharpness, True)
    assert filt.is_established


def test_ablation_quantization_costs_sharpness_only(benchmark):
    def run():
        return (_filter_sharpness(False), _filter_sharpness(True))

    exact, quantized = benchmark(run)
    # Quantized sizes understate coverage, so the cutoff is never sharper.
    assert quantized.cutoff_key >= exact.cutoff_key
    # But it remains a working filter within a small factor.
    assert quantized.cutoff_key < 4 * exact.cutoff_key
