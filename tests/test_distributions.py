"""Tests for the key distributions of Section 5.1.4."""

import numpy as np
import pytest

from repro.datagen.distributions import (
    ASCENDING,
    DESCENDING,
    FIGURE3_DISTRIBUTIONS,
    LOGNORMAL,
    UNIFORM,
    UNIFORM_INT,
    fal,
    get_distribution,
    key_stream,
)
from repro.errors import ConfigurationError


class TestUniform:
    def test_range(self):
        keys = UNIFORM.sample(10_000, seed=1)
        assert keys.min() >= 0.0
        assert keys.max() <= 1.0

    def test_deterministic(self):
        assert np.array_equal(UNIFORM.sample(100, seed=5),
                              UNIFORM.sample(100, seed=5))

    def test_seeds_differ(self):
        assert not np.array_equal(UNIFORM.sample(100, seed=1),
                                  UNIFORM.sample(100, seed=2))

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            UNIFORM.sample(-1)

    def test_uniform_int_values(self):
        keys = UNIFORM_INT.sample(1_000, seed=0)
        assert np.all(keys == np.floor(keys))
        assert keys.min() >= 1


class TestFal:
    def test_formula(self):
        """fal: value(r) = N / r**z over ranks 1..N (then shuffled)."""
        n, z = 1_000, 1.25
        keys = np.sort(fal(z).sample(n, seed=3))[::-1]
        ranks = np.arange(1, n + 1, dtype=float)
        assert np.allclose(keys, n / ranks**z)

    def test_shuffled(self):
        keys = fal(1.25).sample(1_000, seed=3)
        assert not np.all(np.diff(keys) <= 0)

    def test_shape_controls_skew(self):
        gentle = fal(0.5).sample(10_000, seed=1)
        steep = fal(1.5).sample(10_000, seed=1)
        # Steeper shapes concentrate mass: relative spread grows.
        assert (steep.max() / np.median(steep)
                > gentle.max() / np.median(gentle))

    def test_label(self):
        assert fal(1.25).label == "fal-1.25"

    def test_negative_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            fal(-1.0)


class TestLognormal:
    def test_positive(self):
        keys = LOGNORMAL.sample(10_000, seed=2)
        assert keys.min() > 0

    def test_long_tail(self):
        keys = LOGNORMAL.sample(100_000, seed=2)
        assert keys.max() / np.median(keys) > 50


class TestSyntheticOrders:
    def test_ascending_sorted(self):
        keys = ASCENDING.sample(1_000, seed=1)
        assert np.all(np.diff(keys) >= 0)

    def test_descending_sorted(self):
        keys = DESCENDING.sample(1_000, seed=1)
        assert np.all(np.diff(keys) <= 0)


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_distribution("uniform") is UNIFORM
        assert get_distribution("lognormal") is LOGNORMAL

    def test_fal_requires_shape(self):
        with pytest.raises(ConfigurationError):
            get_distribution("fal")

    def test_fal_with_kwarg(self):
        assert get_distribution("fal", z=1.05).label == "fal-1.05"

    def test_fal_inline_shape(self):
        assert get_distribution("fal-1.5").label == "fal-1.5"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            get_distribution("gaussian")

    def test_figure3_set(self):
        labels = [d.label for d in FIGURE3_DISTRIBUTIONS]
        assert labels == ["uniform", "lognormal", "fal-0.5", "fal-1.05",
                          "fal-1.25", "fal-1.5"]


class TestKeyStream:
    def test_streams_exact_count(self):
        assert sum(1 for _ in key_stream(UNIFORM, 1_000, seed=1)) == 1_000

    def test_chunked_generation_matches_itself(self):
        first = list(key_stream(UNIFORM, 500, seed=7, chunk_rows=100))
        second = list(key_stream(UNIFORM, 500, seed=7, chunk_rows=100))
        assert first == second

    def test_zero_rows(self):
        assert list(key_stream(UNIFORM, 0)) == []
