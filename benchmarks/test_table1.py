"""Benchmark: Table 1 — the run-by-run trace at full paper size.

Regenerates the paper's Table 1 (top 5,000 of 1,000,000 rows, memory for
1,000 rows, decile histograms) with the deterministic analysis model and
checks the published trace values.
"""

import pytest

from repro.core.analysis import simulate_uniform


def _run_table1():
    return simulate_uniform(1_000_000, 5_000, 1_000, 9, keep_traces=True)


def test_table1_trace(benchmark):
    result = benchmark(_run_table1)
    assert result.runs == 39
    assert result.rows_spilled < 35_000
    # Paper rows: cutoffs before runs 7-10.
    cutoffs = [trace.cutoff_before for trace in result.traces[6:10]]
    assert cutoffs == pytest.approx([0.9, 0.72, 0.6, 0.504])
    # Run 7's deciles: 0.09 .. 0.72, then the run is truncated.
    run7 = result.traces[6]
    assert run7.boundary_keys[0] == pytest.approx(0.09)
    assert run7.boundary_keys[7] == pytest.approx(0.72)
    assert run7.boundary_keys[8] is None
