"""Rank bounds from run histograms: the OFFSET optimization of §4.1.

"Histograms can also speed up run generation and merging in the presence
of an offset clause ... The combined histogram from all runs can
determine the highest key value with a rank lower than the offset; this
is the key value where the merge logic should start."

A histogram boundary at position ``p`` of a run states *exactly* ``p``
rows of that run sort at or below the boundary.  Summed over runs, that
yields an **upper bound** on how many spilled rows sort below any
boundary key: for each run, rows below ``key`` number at most the
cumulative count of its smallest boundary ≥ ``key`` (or the whole run if
no such boundary exists).

:meth:`RankIndex.skip_key_for_offset` finds the largest boundary whose
upper bound does not exceed the offset — every row below it is
guaranteed to be inside the skipped region, so the merge may start there
(skipping whole run pages via the page index) while keeping OFFSET
semantics exact.
"""

from __future__ import annotations

import bisect
from typing import Any

from repro.core.histogram import Bucket


class RankIndex:
    """Accumulates per-run histogram boundaries for rank upper bounds.

    Feed it in run order: :meth:`add_bucket` for every bucket a run
    produces, then :meth:`end_run` with the run's final row count.
    """

    def __init__(self) -> None:
        # Completed runs: parallel (boundaries, cumulative counts) plus
        # the run's total spilled rows.
        self._boundaries: list[list[Any]] = []
        self._cumulative: list[list[int]] = []
        self._totals: list[int] = []
        self._current_boundaries: list[Any] = []
        self._current_cumulative: list[int] = []
        self._current_rows = 0

    # -- construction -----------------------------------------------------

    def add_bucket(self, bucket: Bucket) -> None:
        """Record one bucket of the run currently being written."""
        self._current_rows += bucket.size
        self._current_boundaries.append(bucket.boundary_key)
        self._current_cumulative.append(self._current_rows)

    def end_run(self, total_rows: int) -> None:
        """Seal the current run (``total_rows`` = rows actually spilled)."""
        if self._current_boundaries:
            self._boundaries.append(self._current_boundaries)
            self._cumulative.append(self._current_cumulative)
            self._totals.append(max(total_rows,
                                    self._current_cumulative[-1]))
        elif total_rows:
            # A run with no histogram still contributes unknown-rank rows.
            self._boundaries.append([])
            self._cumulative.append([])
            self._totals.append(total_rows)
        self._current_boundaries = []
        self._current_cumulative = []
        self._current_rows = 0

    # -- queries -----------------------------------------------------------

    @property
    def run_count(self) -> int:
        """Sealed runs represented in the index."""
        return len(self._totals)

    def upper_bound_rows_below(self, key: Any) -> int:
        """At most this many spilled rows have keys strictly below ``key``."""
        total = 0
        for boundaries, cumulative, run_total in zip(
                self._boundaries, self._cumulative, self._totals):
            if not boundaries:
                total += run_total
                continue
            index = bisect.bisect_left(boundaries, key)
            if index < len(boundaries):
                total += cumulative[index]
            else:
                total += run_total
        return total

    def skip_key_for_offset(self, offset: int) -> Any:
        """The largest boundary below which at most ``offset`` rows sort.

        Returns ``None`` when no boundary qualifies (tiny offsets or no
        histograms).  The bound is monotone in the boundary key, so a
        binary search over the global candidate list suffices.
        """
        if offset <= 0:
            return None
        candidates = sorted({boundary
                             for run in self._boundaries
                             for boundary in run})
        if not candidates:
            return None
        low, high = 0, len(candidates) - 1
        best = None
        while low <= high:
            middle = (low + high) // 2
            if self.upper_bound_rows_below(candidates[middle]) <= offset:
                best = candidates[middle]
                low = middle + 1
            else:
                high = middle - 1
        return best
