"""The paper's core contribution: histogram-guided top-k filtering."""

from repro.core.analysis import (
    AnalysisResult,
    RunTrace,
    simulate_sampled,
    simulate_uniform,
)
from repro.core.cutoff import CutoffFilter, CutoffFilterStats
from repro.core.histogram import Bucket, RunHistogramBuilder
from repro.core.rank_index import RankIndex
from repro.core.policies import (
    DEFAULT_BUCKETS_PER_RUN,
    FixedStridePolicy,
    NoHistogramPolicy,
    SizingPolicy,
    TargetBucketsPolicy,
    policy_for_bucket_count,
)
from repro.core.topk import HistogramTopK, topk

__all__ = [
    "Bucket",
    "RunHistogramBuilder",
    "SizingPolicy",
    "TargetBucketsPolicy",
    "FixedStridePolicy",
    "NoHistogramPolicy",
    "policy_for_bucket_count",
    "DEFAULT_BUCKETS_PER_RUN",
    "CutoffFilter",
    "CutoffFilterStats",
    "RankIndex",
    "HistogramTopK",
    "topk",
    "AnalysisResult",
    "RunTrace",
    "simulate_uniform",
    "simulate_sampled",
]
