"""A zero-dependency tracing core: nested, monotonic-clock-timed spans.

Design constraints, in order:

1. **Untraced queries pay (almost) nothing.**  The default tracer is the
   :data:`NULL_TRACER` singleton whose ``span()`` returns one shared
   inert object; instrumentation sites in hot code guard on the
   ``enabled`` flag — a single attribute load and branch — and spans are
   only ever opened per *phase* (run generation, a spill run, a merge
   step), never per row.
2. **Thread safety.**  A query service traces queries running on many
   worker threads against per-query tracers, but nothing stops a caller
   from sharing one tracer: the active-span stack is thread-local and
   all tree mutation happens under a lock.
3. **Monotonic clocks.**  Span timing uses ``time.perf_counter`` so
   durations are immune to wall-clock adjustment; an epoch offset
   captured at tracer construction makes timestamps comparable across
   spans of one tracer (which is all Chrome's trace viewer needs).

The export format is the Chrome trace-event JSON (``chrome://tracing``
or https://ui.perfetto.dev): complete ``"X"`` events for spans, instant
``"i"`` events for point events.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Iterator


class Span:
    """One timed phase of execution, possibly nested inside another.

    Spans are context managers::

        with tracer.span("topk.merge", runs=4) as span:
            ...
            span.set_attribute("rows_output", produced)

    Attributes carry small, JSON-friendly values (numbers, strings).
    ``events`` holds point-in-time observations attached to the span —
    the cutoff timeline rides on these.
    """

    __slots__ = ("name", "attributes", "events", "children", "tracer",
                 "parent", "thread_id", "start", "end")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: dict[str, Any] | None = None):
        self.tracer = tracer
        self.name = name
        self.attributes: dict[str, Any] = attributes or {}
        self.events: list[tuple[float, str, dict[str, Any]]] = []
        self.children: list[Span] = []
        self.parent: Span | None = None
        self.thread_id = threading.get_ident()
        self.start: float | None = None
        self.end: float | None = None

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self.tracer._pop(self)

    # -- observations ----------------------------------------------------

    def set_attribute(self, name: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[name] = value

    def event(self, name: str, **attributes: Any) -> None:
        """Record a point-in-time event on this span."""
        self.events.append((time.perf_counter(), name, attributes))

    # -- accessors -------------------------------------------------------

    @property
    def duration_seconds(self) -> float | None:
        """Wall time between enter and exit, or ``None`` while open."""
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        timing = (f"{self.duration_seconds * 1e3:.2f}ms"
                  if self.duration_seconds is not None else "open")
        return f"Span({self.name!r}, {timing}, {len(self.children)} children)"


class Tracer:
    """Produces and collects :class:`Span` s for one traced execution.

    The tracer owns the span tree: ``span()`` creates a child of the
    calling thread's innermost open span (or a new root), ``roots``
    holds every top-level span after execution.  ``enabled`` is the
    single-branch guard instrumented code checks before doing any
    per-phase work.
    """

    enabled = True

    def __init__(self):
        self.roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- span construction ----------------------------------------------

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span; nests under the thread's current span on enter."""
        return Span(self, name, attributes)

    def current(self) -> Span | None:
        """The calling thread's innermost open span, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def event(self, name: str, **attributes: Any) -> None:
        """Record a point event on the current span (or a root event)."""
        span = self.current()
        if span is not None:
            span.event(name, **attributes)
        else:
            with self._lock:
                orphan = Span(self, name, attributes)
                orphan.start = orphan.end = time.perf_counter()
                self.roots.append(orphan)

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        span.parent = stack[-1] if stack else None
        with self._lock:
            if span.parent is not None:
                span.parent.children.append(span)
            else:
                self.roots.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # tolerate out-of-order exits
            stack.remove(span)

    # -- queries over the finished trace ---------------------------------

    def spans(self) -> Iterator[Span]:
        """Every recorded span, depth-first across roots."""
        for root in list(self.roots):
            yield from root.walk()

    def find(self, name: str) -> list[Span]:
        """All spans with ``name``."""
        return [span for span in self.spans() if span.name == name]

    def span_count(self) -> int:
        return sum(1 for _ in self.spans())

    # -- export ----------------------------------------------------------

    def to_chrome_trace(self) -> list[dict[str, Any]]:
        """The trace as Chrome trace-event JSON objects.

        Spans become complete (``"X"``) events, span events become
        instant (``"i"``) events; timestamps are microseconds relative
        to the earliest span start, which is what the viewers expect.
        """
        starts = [span.start for span in self.spans()
                  if span.start is not None]
        epoch = min(starts) if starts else 0.0
        out: list[dict[str, Any]] = []
        for span in self.spans():
            if span.start is None:
                continue
            end = span.end if span.end is not None else span.start
            out.append({
                "name": span.name,
                "ph": "X",
                "ts": (span.start - epoch) * 1e6,
                "dur": (end - span.start) * 1e6,
                "pid": 1,
                "tid": span.thread_id,
                "args": dict(span.attributes),
            })
            for when, name, attributes in span.events:
                out.append({
                    "name": name,
                    "ph": "i",
                    "s": "t",
                    "ts": (when - epoch) * 1e6,
                    "pid": 1,
                    "tid": span.thread_id,
                    "args": dict(attributes),
                })
        return out

    def write_chrome_trace(self, path: str) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"traceEvents": self.to_chrome_trace()}, handle)


class _NullSpan:
    """Shared inert span: every operation is a no-op returning fast."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> None:
        return None

    def set_attribute(self, _name: str, _value: Any) -> None:
        return None

    def event(self, _name: str, **_attributes: Any) -> None:
        return None

    @property
    def duration_seconds(self) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: one shared instance, zero allocation per use.

    ``enabled`` is ``False`` so instrumentation sites can skip attribute
    assembly entirely; calling ``span()``/``event()`` anyway is safe and
    allocation-free.
    """

    enabled = False

    __slots__ = ()

    def span(self, _name: str, **_attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def current(self) -> None:
        return None

    def event(self, _name: str, **_attributes: Any) -> None:
        return None

    def spans(self) -> Iterator[Span]:
        return iter(())

    def find(self, _name: str) -> list[Span]:
        return []

    def span_count(self) -> int:
        return 0

    def to_chrome_trace(self) -> list[dict[str, Any]]:
        return []


#: The process-wide disabled tracer (the default everywhere).
NULL_TRACER = NullTracer()
