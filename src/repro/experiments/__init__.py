"""Experiment harness regenerating every table and figure of the paper."""

from repro.experiments.harness import (
    Comparison,
    LINEITEM_ROW_BYTES,
    PAPER_SCALE,
    QUICK_SCALE,
    RunResult,
    Scale,
    compare,
    run_algorithm,
)

__all__ = [
    "Scale",
    "PAPER_SCALE",
    "QUICK_SCALE",
    "LINEITEM_ROW_BYTES",
    "RunResult",
    "Comparison",
    "run_algorithm",
    "compare",
]
