"""Benchmark: Table 3 — varying output size at full paper size."""

import pytest

from repro.core.analysis import simulate_uniform
from repro.experiments.paper_data import TABLE3


@pytest.mark.parametrize("k", [2_000, 5_000, 20_000])
def test_table3_row(benchmark, k):
    runs, rows, cutoff, _ratio = TABLE3[k]
    result = benchmark(simulate_uniform, 1_000_000, k, 1_000, 9)
    assert result.runs == pytest.approx(runs, abs=1)
    assert result.rows_spilled == pytest.approx(rows, rel=0.01)
    assert result.final_cutoff == pytest.approx(cutoff, rel=5e-3)


def test_table3_output_scaling_shape(benchmark):
    """Spill grows roughly linearly in k while runs stay proportional."""

    def sweep():
        return [simulate_uniform(1_000_000, k, 1_000, 9)
                for k in (2_000, 5_000, 10_000, 20_000)]

    results = benchmark(sweep)
    spilled = [result.rows_spilled for result in results]
    assert spilled == sorted(spilled)
    # Roughly linear: 10x the output costs about 10x the spill (paper:
    # 14,858 -> 109,016 for 2k -> 20k).
    assert 5 < spilled[-1] / spilled[0] < 12
