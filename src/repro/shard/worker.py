"""Worker-process side of sharded top-k execution.

Each worker is one :class:`~repro.vectorized.topk.VectorizedHistogramTopK`
kernel fed from shared-memory chunks, plus the cross-shard cutoff
protocol around it:

* **adopt** — at a configurable chunk cadence the worker reads the
  global slot; a remote cutoff means "``k + offset`` rows globally sort
  at or below this key", which is exactly the contract of
  :meth:`~repro.core.cutoff.CutoffFilter.seed`, so adoption is a
  ``seed()`` call (sharpening spill-time truncation) plus an arrival-side
  pre-mask of the chunk (counted as ``rows_eliminated_on_arrival``, with
  the remote share reported separately).
* **publish** — after the kernel consumes a chunk, the worker publishes
  its live cutoff if it tightened; the slot ignores anything not
  strictly tighter than the global best.

Results (the shard-local top ``k + offset`` keys/ids, cumulative
statistics snapshots, and the exchange record) travel back over a result
queue; snapshots are cumulative and folded in with
:class:`~repro.storage.stats.SnapshotMerger`, so periodic progress
reports and the final report never double count.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass
from time import perf_counter
from typing import Iterator

import numpy as np

from repro.shard.chunks import read_chunk
from repro.shard.slot import SharedCutoffSlot
from repro.vectorized.runs import VectorRunDisk, VectorRunStore
from repro.vectorized.topk import VectorizedHistogramTopK

#: Task-queue sentinel: no more chunks.
DONE = "__done__"


@dataclass(frozen=True)
class ShardConfig:
    """Everything a worker needs, picklable (crosses the process spawn)."""

    #: Shard-local output size — the *global* ``k + offset`` (offset
    #: handling stays in the coordinator's final merge).
    k: int
    #: Per-shard memory budget in rows.
    memory_rows: int
    buckets_per_run: int = 50
    #: Cutoff slot segment name; ``None`` disables cutoff exchange.
    slot_name: str | None = None
    #: Chunks between slot reads (1 = check the shared slot on every
    #: chunk; larger = periodic exchange).
    exchange_interval: int = 1
    #: Spill backend: ``"memory"`` or ``"disk"``.
    spill: str = "memory"
    #: Parent directory for per-shard spill files (disk backend); the
    #: coordinator removes the whole tree on exit, covering even
    #: hard-killed workers.
    spill_root: str | None = None
    #: Chunks between cumulative progress snapshots on the result queue.
    stats_interval: int = 16
    #: Cap on retained exchange records (they feed EXPLAIN ANALYZE).
    record_limit: int = 256
    #: Test hook: raise after consuming this many chunks.
    fail_after_chunks: int | None = None


class _ExchangeState:
    """Mutable per-worker cutoff-exchange bookkeeping."""

    def __init__(self):
        self.chunks = 0
        self.publications = 0
        self.adoptions = 0
        self.rows_dropped_remote = 0
        self.remote_cutoff: float | None = None
        self.published: float | None = None
        #: ``(kind, local_rows_seen, cutoff, global_publication_seq)``
        self.records: list[tuple[str, int, float, int]] = []

    def record(self, kind: str, rows_seen: int, cutoff: float,
               seq: int, limit: int) -> None:
        if len(self.records) < limit:
            self.records.append((kind, rows_seen, float(cutoff), seq))


def shard_worker_main(shard_id: int, config: ShardConfig, slot_lock,
                      task_queue, result_queue) -> None:
    """Process entry point.  Never raises: failures are reported over the
    result queue, and the task queue is drained afterwards (unlinking
    every unconsumed segment) so the coordinator can't block on a full
    queue feeding a dead consumer."""
    try:
        payload = _run_shard(shard_id, config, slot_lock, task_queue,
                             result_queue)
        result_queue.put(("done", shard_id, payload))
    except BaseException as exc:
        result_queue.put(("error", shard_id,
                          f"{type(exc).__name__}: {exc}",
                          traceback.format_exc()))
        _drain(task_queue)


def _drain(task_queue) -> None:
    while True:
        message = task_queue.get()
        if message == DONE:
            return
        try:
            read_chunk(message)  # attach + unlink, data discarded
        except FileNotFoundError:  # pragma: no cover - cleanup race
            pass


def _make_store(shard_id: int, config: ShardConfig) -> VectorRunStore:
    if config.spill != "disk":
        return VectorRunStore()
    directory = None
    if config.spill_root is not None:
        directory = os.path.join(config.spill_root, f"shard{shard_id}")
        os.makedirs(directory, exist_ok=True)
    return VectorRunStore(storage=VectorRunDisk(directory=directory))


def _run_shard(shard_id: int, config: ShardConfig, slot_lock,
               task_queue, result_queue) -> dict:
    started = perf_counter()
    slot = (SharedCutoffSlot.attach(config.slot_name, slot_lock)
            if config.slot_name is not None else None)
    store = _make_store(shard_id, config)
    kernel = VectorizedHistogramTopK(
        k=config.k,
        memory_rows=config.memory_rows,
        buckets_per_run=config.buckets_per_run,
        store=store,
    )
    state = _ExchangeState()
    try:
        out_keys, out_ids = kernel.execute(
            _chunk_stream(shard_id, config, task_queue, result_queue,
                          kernel, slot, state))
        _maybe_publish(kernel, slot, state, config)  # final local cutoff
        return {
            "keys": out_keys,
            "ids": (out_ids if out_ids is not None
                    else np.empty(0, dtype=np.int64)),
            "stats": kernel.stats.snapshot(),
            "chunks": state.chunks,
            "publications": state.publications,
            "adoptions": state.adoptions,
            "rows_dropped_remote": state.rows_dropped_remote,
            "records": state.records,
            "local_cutoff": kernel.live_cutoff,
            "busy_seconds": perf_counter() - started,
        }
    finally:
        store.close()
        if slot is not None:
            slot.close()


def _chunk_stream(shard_id: int, config: ShardConfig, task_queue,
                  result_queue, kernel: VectorizedHistogramTopK,
                  slot: SharedCutoffSlot | None,
                  state: _ExchangeState) -> Iterator[tuple]:
    interval = max(1, config.exchange_interval)
    stats = kernel.stats
    while True:
        message = task_queue.get()
        if message == DONE:
            return
        keys, ids = read_chunk(message)
        state.chunks += 1
        if (config.fail_after_chunks is not None
                and state.chunks > config.fail_after_chunks):
            raise RuntimeError(
                f"injected failure in shard {shard_id} after "
                f"{config.fail_after_chunks} chunks")
        if slot is not None and state.chunks % interval == 0:
            _adopt(kernel, slot, state, config)
        # Arrival-side pre-mask with the freshest *remote* cutoff when it
        # is strictly tighter than anything this shard knows locally —
        # the kernel's own filter would only apply the local bound.
        # Charged exactly like the single-process arrival pre-filter so
        # counters stay comparable; the remote share is also tallied on
        # its own for the service metrics.
        remote = state.remote_cutoff
        local = kernel.live_cutoff
        if remote is not None and (local is None or remote < local):
            mask = keys <= remote
            kept = int(mask.sum())
            dropped = keys.size - kept
            if dropped:
                stats.rows_consumed += dropped
                stats.cutoff_comparisons += dropped
                stats.rows_eliminated_on_arrival += dropped
                state.rows_dropped_remote += dropped
                keys = keys[mask]
                ids = ids[mask]
        if keys.size:
            yield keys, ids
            _maybe_publish(kernel, slot, state, config)
        if state.chunks % max(1, config.stats_interval) == 0:
            result_queue.put(("stats", shard_id, stats.snapshot()))


def _adopt(kernel: VectorizedHistogramTopK, slot: SharedCutoffSlot,
           state: _ExchangeState, config: ShardConfig) -> None:
    remote, seq = slot.read_float()
    if remote is None:
        return
    if state.remote_cutoff is None or remote < state.remote_cutoff:
        state.remote_cutoff = remote
        local = kernel.live_cutoff
        if local is None or remote < local:
            state.adoptions += 1
            state.record("adopt", kernel.stats.rows_consumed, remote, seq,
                         limit=config.record_limit)
            # Sharpen spill-time truncation too: a remote cutoff is a
            # valid seed (>= k + offset rows globally sort at/below it).
            kernel.cutoff_filter.seed(remote)


def _maybe_publish(kernel: VectorizedHistogramTopK,
                   slot: SharedCutoffSlot | None, state: _ExchangeState,
                   config: ShardConfig) -> None:
    if slot is None:
        return
    cutoff = kernel.live_cutoff
    if cutoff is None or cutoff != cutoff:  # nothing yet, or NaN
        return
    if state.published is not None and cutoff >= state.published:
        return
    state.published = cutoff
    seq = slot.publish_float(cutoff)
    if seq is not None:
        state.publications += 1
        state.record("publish", kernel.stats.rows_consumed, cutoff, seq,
                     limit=config.record_limit)
