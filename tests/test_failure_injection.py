"""Failure-injection tests: storage faults must surface cleanly.

A production operator's failure mode matters as much as its happy path:
a spill fault mid-run must raise a :class:`SpillError` (not corrupt
results), resources must stay reclaimable, and a fresh operator must
succeed afterwards.
"""

import itertools
import os
import random
import threading

import pytest

from repro.core.topk import HistogramTopK
from repro.errors import ReproError, SpillError
from repro.storage.pages import Page
from repro.storage.spill import (
    DiskSpillBackend,
    MemorySpillBackend,
    SpillFile,
    SpillManager,
)

KEY = lambda row: row[0]  # noqa: E731


class _FlakyFile(SpillFile):
    """In-memory spill file that fails after a set number of writes."""

    def __init__(self, file_id, stats, fail_after_pages, mode):
        super().__init__(file_id, stats)
        self._pages: list[Page] = []
        self._fail_after = fail_after_pages
        self._mode = mode

    def _store_page(self, page: Page) -> None:
        if self._mode == "write" and self._fail_after() :
            raise SpillError("injected write fault")
        self._pages.append(page)

    def _load_pages(self, start_page: int = 0, cutoff=None):
        for page in self._pages[start_page:]:
            if self._mode == "read" and self._fail_after():
                raise SpillError("injected read fault")
            yield page

    def _discard(self) -> None:
        self._pages = []


class FlakyBackend(MemorySpillBackend):
    """Backend injecting a fault on the N-th page operation."""

    def __init__(self, fail_on_operation: int, mode: str = "write"):
        self._countdown = itertools.count(1)
        self._fail_on = fail_on_operation
        self._mode = mode

    def _should_fail(self) -> bool:
        return next(self._countdown) == self._fail_on

    def create_file(self, file_id, stats):
        return _FlakyFile(file_id, stats, self._should_fail, self._mode)


def rows(count, seed=0):
    rng = random.Random(seed)
    return [(rng.random(),) for _ in range(count)]


class TestWriteFaults:
    def test_fault_surfaces_as_spill_error(self):
        manager = SpillManager(backend=FlakyBackend(fail_on_operation=3),
                               page_bytes=256)
        operator = HistogramTopK(KEY, 2_000, 200, spill_manager=manager)
        with pytest.raises(SpillError, match="injected write fault"):
            list(operator.execute(iter(rows(20_000))))

    def test_fault_is_a_repro_error(self):
        """Callers can catch everything from this library uniformly."""
        manager = SpillManager(backend=FlakyBackend(fail_on_operation=1),
                               page_bytes=256)
        operator = HistogramTopK(KEY, 2_000, 200, spill_manager=manager)
        with pytest.raises(ReproError):
            list(operator.execute(iter(rows(5_000))))

    def test_manager_still_closable_after_fault(self):
        manager = SpillManager(backend=FlakyBackend(fail_on_operation=2),
                               page_bytes=256)
        operator = HistogramTopK(KEY, 2_000, 200, spill_manager=manager)
        with pytest.raises(SpillError):
            list(operator.execute(iter(rows(20_000))))
        manager.close()  # must not raise

    def test_fresh_operator_recovers(self):
        data = rows(10_000, seed=1)
        manager = SpillManager(backend=FlakyBackend(fail_on_operation=2),
                               page_bytes=256)
        operator = HistogramTopK(KEY, 1_000, 200, spill_manager=manager)
        with pytest.raises(SpillError):
            list(operator.execute(iter(data)))
        retry = HistogramTopK(KEY, 1_000, 200)
        assert list(retry.execute(iter(data))) == sorted(data)[:1_000]


class TestReadFaults:
    def test_merge_phase_fault_surfaces(self):
        manager = SpillManager(
            backend=FlakyBackend(fail_on_operation=2, mode="read"),
            page_bytes=256)
        operator = HistogramTopK(KEY, 2_000, 200, spill_manager=manager)
        with pytest.raises(SpillError, match="injected read fault"):
            list(operator.execute(iter(rows(20_000))))

    def test_no_partial_output_before_fault_reaches_k(self):
        """If the merge dies, the consumer sees the exception rather
        than a silently truncated result set."""
        manager = SpillManager(
            backend=FlakyBackend(fail_on_operation=5, mode="read"),
            page_bytes=256)
        operator = HistogramTopK(KEY, 2_000, 200, spill_manager=manager)
        produced = []
        with pytest.raises(SpillError):
            for row in operator.execute(iter(rows(20_000))):
                produced.append(row)
        assert len(produced) < 2_000


class TestDiskSpillLifecycle:
    """The disk backend's writer threads and temp files must never leak —
    not after clean use, not after faults, not after double delete."""

    def test_writer_fault_surfaces_as_spill_error(self, tmp_path):
        backend = DiskSpillBackend(directory=str(tmp_path))
        manager = SpillManager(backend=backend, page_bytes=64)
        spill_file = manager.create_file()
        # Injected fault: the handle dies under the writer thread.
        spill_file._handle.close()
        with pytest.raises(SpillError, match="background spill write"):
            spill_file.append_page(Page(rows=[(1.0,)], byte_size=32))
            spill_file.seal()
        manager.close()
        assert list(tmp_path.iterdir()) == []

    def test_writer_thread_joined_after_seal(self, tmp_path):
        backend = DiskSpillBackend(directory=str(tmp_path))
        manager = SpillManager(backend=backend, page_bytes=64)
        spill_file = manager.create_file()
        for i in range(10):
            spill_file.append_page(Page(rows=[(float(i),)], byte_size=32))
        spill_file.seal()
        assert not spill_file._writer._thread.is_alive()
        read_back = [row for page in spill_file.pages()
                     for row in page.rows]
        assert read_back == [(float(i),) for i in range(10)]
        manager.close()

    def test_delete_and_close_are_idempotent(self, tmp_path):
        backend = DiskSpillBackend(directory=str(tmp_path))
        manager = SpillManager(backend=backend, page_bytes=64)
        spill_file = manager.create_file()
        spill_file.append_page(Page(rows=[(1.0,)], byte_size=32))
        spill_file.seal()
        spill_file.delete()
        spill_file.delete()  # second delete is a no-op
        manager.close()
        manager.close()  # and so is a second close
        backend.close()  # already closed through the manager
        assert list(tmp_path.iterdir()) == []

    def test_no_thread_or_file_leak_after_mid_spill_exception(
            self, tmp_path):
        before = set(threading.enumerate())

        def poisoned():
            yield from rows(5_000)
            raise ValueError("upstream failure")

        backend = DiskSpillBackend(directory=str(tmp_path))
        manager = SpillManager(backend=backend, page_bytes=256)
        operator = HistogramTopK(KEY, 500, 100, spill_manager=manager)
        with pytest.raises(ValueError, match="upstream failure"):
            list(operator.execute(poisoned()))
        manager.close()
        leaked = [thread for thread in set(threading.enumerate()) - before
                  if thread.is_alive() and thread.name.startswith(
                      ("spill-writer", "spill-reader"))]
        assert leaked == []
        assert list(tmp_path.iterdir()) == []

    def test_early_merge_abandon_releases_read_ahead(self, tmp_path):
        backend = DiskSpillBackend(directory=str(tmp_path))
        manager = SpillManager(backend=backend, page_bytes=64)
        spill_file = manager.create_file()
        for i in range(50):
            spill_file.append_page(Page(rows=[(float(i),)], byte_size=32))
        spill_file.seal()
        scan = spill_file.pages(prefetch=2)
        next(scan)
        scan.close()  # abandon mid-scan: the generator's finally runs
        alive = [thread for thread in threading.enumerate()
                 if thread.is_alive()
                 and thread.name.startswith("spill-reader")]
        assert alive == []
        manager.close()

    def test_unsealed_file_cleaned_up_by_backend_close(self, tmp_path):
        backend = DiskSpillBackend(directory=str(tmp_path))
        manager = SpillManager(backend=backend, page_bytes=64)
        spill_file = manager.create_file()
        spill_file.append_page(Page(rows=[(1.0,)], byte_size=32))
        # Never sealed — a query died mid-spill.
        manager.close()
        assert list(tmp_path.iterdir()) == []

    def test_vector_run_write_fault_defers_to_caller(self, tmp_path):
        import numpy as np

        from repro.vectorized.runs import VectorRunDisk, VectorRunStore

        storage = VectorRunDisk(directory=str(tmp_path / "missing"))
        store = VectorRunStore(storage=storage)
        run = store.write_run(np.array([1.0, 2.0]))
        with pytest.raises(SpillError, match="background vector run"):
            store.read_run(run)
        store.close()

    def test_vector_run_store_close_removes_files(self, tmp_path):
        import numpy as np

        from repro.vectorized.runs import VectorRunDisk, VectorRunStore

        storage = VectorRunDisk(directory=str(tmp_path))
        store = VectorRunStore(storage=storage)
        run = store.write_run(np.array([1.0, 2.0, 3.0]))
        keys, ids = store.read_run(run)
        assert keys.tolist() == [1.0, 2.0, 3.0] and ids is None
        store.close()
        store.close()  # idempotent
        assert not any(name.endswith(".spill")
                       for name in os.listdir(tmp_path))


class TestInputFaults:
    def test_exception_from_input_iterator_propagates(self):
        def poisoned():
            yield from rows(5_000)
            raise ValueError("upstream failure")

        operator = HistogramTopK(KEY, 1_000, 200)
        with pytest.raises(ValueError, match="upstream failure"):
            list(operator.execute(poisoned()))

    def test_operator_not_reusable_mid_stream_but_state_inspectable(self):
        def poisoned():
            yield from rows(5_000, seed=3)
            raise ValueError("upstream failure")

        operator = HistogramTopK(KEY, 1_000, 200)
        with pytest.raises(ValueError):
            list(operator.execute(poisoned()))
        # Diagnostics survive the failure.
        assert operator.stats.rows_consumed == 5_000
        assert operator.stats.io.rows_spilled > 0
