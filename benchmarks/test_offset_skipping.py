"""Benchmark: histogram-guided OFFSET skipping (Section 4.1).

Deep pagination ("page 50 of the report") makes the merge skip
``offset`` rows.  With the rank index and page-indexed runs, most of the
offset region is skipped without being read; this bench quantifies the
read-traffic savings.  Pages are 4 KiB here (~28 payload rows) so page
skipping has realistic granularity relative to the run sizes.
"""

import random

from repro.core.topk import HistogramTopK
from repro.storage.spill import SpillManager

KEY = lambda row: row[0]  # noqa: E731
OFFSET = 4_000
K = 300


def _input():
    rng = random.Random(42)
    return [(rng.random(),) for _ in range(60_000)]


def _reads(with_index, rows):
    manager = SpillManager(page_bytes=4_096,
                           row_size=lambda _row: 143)
    operator = HistogramTopK(KEY, K, 350, offset=OFFSET,
                             spill_manager=manager,
                             build_rank_index=with_index)
    out = list(operator.execute(iter(rows)))
    assert len(out) == K
    return manager.stats.rows_read, operator.offset_rows_skipped


def test_offset_skipping_enabled(benchmark):
    rows = _input()
    reads, skipped = benchmark(_reads, True, rows)
    assert skipped > OFFSET // 2


def test_offset_skipping_disabled(benchmark):
    rows = _input()
    reads, skipped = benchmark(_reads, False, rows)
    assert skipped == 0


def test_offset_skipping_saves_reads(benchmark):
    rows = _input()

    def run():
        return _reads(True, rows)[0], _reads(False, rows)[0]

    with_index, without_index = benchmark(run)
    # The rank index skips most of the 4,000-row offset region unread.
    assert with_index < 0.7 * without_index
