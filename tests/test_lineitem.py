"""Tests for the TPC-H LINEITEM generator."""

import datetime

from repro.rows.lineitem import (
    LINEITEM_SCHEMA,
    average_lineitem_row_bytes,
    generate_lineitem,
    lineitem_with_keys,
)


class TestSchema:
    def test_sixteen_columns(self):
        assert len(LINEITEM_SCHEMA) == 16

    def test_orderkey_first(self):
        assert LINEITEM_SCHEMA.names[0] == "L_ORDERKEY"
        assert LINEITEM_SCHEMA.names[-1] == "L_COMMENT"


class TestGenerator:
    def test_row_count(self):
        assert sum(1 for _ in generate_lineitem(137)) == 137

    def test_rows_validate_against_schema(self):
        for row in generate_lineitem(50, seed=1):
            LINEITEM_SCHEMA.validate_row(row)

    def test_deterministic_for_seed(self):
        first = list(generate_lineitem(25, seed=9))
        second = list(generate_lineitem(25, seed=9))
        assert first == second

    def test_different_seeds_differ(self):
        assert (list(generate_lineitem(25, seed=1))
                != list(generate_lineitem(25, seed=2)))

    def test_date_ordering_invariants(self):
        for row in generate_lineitem(40, seed=3):
            shipdate, commitdate, receiptdate = row[10], row[11], row[12]
            assert isinstance(shipdate, datetime.date)
            assert commitdate > shipdate
            assert receiptdate > shipdate

    def test_injected_keys_land_in_orderkey(self):
        keys = [10.5, 3.25, 99.0]
        rows = list(lineitem_with_keys(keys))
        assert [row[0] for row in rows] == keys

    def test_injected_keys_from_generator(self):
        rows = list(lineitem_with_keys(iter(range(5))))
        assert [row[0] for row in rows] == [0, 1, 2, 3, 4]

    def test_average_row_bytes_plausible(self):
        average = average_lineitem_row_bytes()
        # Real TPC-H lineitem rows are ~120-180 bytes.
        assert 80 < average < 400
