"""repro — histogram-guided external merge sort for top-k queries.

A from-scratch reproduction of *"External Merge Sort for Top-K Queries:
Eager input filtering guided by histograms"* (Chronis, Do, Graefe, Peters —
SIGMOD 2020), including the substrates the algorithm depends on (runs,
replacement selection, merging, spill storage with a disaggregated cost
model), the baselines it is evaluated against, a mini SQL query engine, and
an experiment harness regenerating every table and figure of the paper.

Quickstart::

    from repro import HistogramTopK, keys_only_workload

    workload = keys_only_workload(input_rows=200_000, k=5_000,
                                  memory_rows=1_000)
    operator = HistogramTopK(workload.sort_spec, workload.k,
                             workload.memory_rows)
    top = list(operator.execute(workload.make_input()))
"""

from repro.core import (
    Bucket,
    CutoffFilter,
    FixedStridePolicy,
    HistogramTopK,
    NoHistogramPolicy,
    TargetBucketsPolicy,
    policy_for_bucket_count,
    simulate_sampled,
    simulate_uniform,
    topk,
)
from repro.datagen import (
    FIGURE3_DISTRIBUTIONS,
    LOGNORMAL,
    UNIFORM,
    Distribution,
    fal,
    get_distribution,
    keys_only_workload,
    lineitem_workload,
)
from repro.memory import MemoryBudget, byte_budget, row_budget
from repro.obs import (
    AnalyzedPlan,
    CutoffTimeline,
    MetricsRegistry,
    NULL_TRACER,
    Tracer,
)
from repro.rows import (
    LINEITEM_SCHEMA,
    Column,
    ColumnType,
    Schema,
    SortColumn,
    SortSpec,
    sort_spec,
)
from repro.sorting import ExternalSort, Merger, MergePolicy
from repro.storage import (
    CostModel,
    DEFAULT_COST_MODEL,
    DiskSpillBackend,
    IOStats,
    MemorySpillBackend,
    OperatorStats,
    SpillManager,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "HistogramTopK",
    "topk",
    "CutoffFilter",
    "Bucket",
    "TargetBucketsPolicy",
    "FixedStridePolicy",
    "NoHistogramPolicy",
    "policy_for_bucket_count",
    "simulate_uniform",
    "simulate_sampled",
    # rows
    "Schema",
    "Column",
    "ColumnType",
    "SortSpec",
    "SortColumn",
    "sort_spec",
    "LINEITEM_SCHEMA",
    # data
    "Distribution",
    "UNIFORM",
    "LOGNORMAL",
    "FIGURE3_DISTRIBUTIONS",
    "fal",
    "get_distribution",
    "keys_only_workload",
    "lineitem_workload",
    # memory & storage
    "MemoryBudget",
    "row_budget",
    "byte_budget",
    "SpillManager",
    "MemorySpillBackend",
    "DiskSpillBackend",
    "IOStats",
    "OperatorStats",
    "CostModel",
    "DEFAULT_COST_MODEL",
    # sorting
    "ExternalSort",
    "Merger",
    "MergePolicy",
    # observability
    "Tracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "CutoffTimeline",
    "AnalyzedPlan",
]
