"""Tests for the physical operators."""

import pytest

from repro.engine.operators import (
    Filter,
    InMemorySort,
    Limit,
    Project,
    Table,
    TableScan,
    TopK,
)
from repro.errors import ConfigurationError
from repro.rows.schema import Column, ColumnType, Schema
from repro.rows.sortspec import SortSpec


@pytest.fixture
def schema():
    return Schema([Column("a", ColumnType.INT64),
                   Column("b", ColumnType.FLOAT64)])


@pytest.fixture
def table(schema):
    rows = [(3, 0.3), (1, 0.1), (2, 0.2), (5, 0.5), (4, 0.4)]
    return Table("t", schema, rows)


class TestTable:
    def test_row_count_from_list(self, table):
        assert table.row_count == 5

    def test_callable_source_fresh_iterators(self, schema):
        table = Table("t", schema, lambda: iter([(1, 0.1)]))
        assert list(table.rows()) == [(1, 0.1)]
        assert list(table.rows()) == [(1, 0.1)]  # second scan works

    def test_callable_source_unknown_count(self, schema):
        table = Table("t", schema, lambda: iter([]))
        assert table.row_count is None


class TestScanFilterProject:
    def test_scan(self, table):
        assert len(list(TableScan(table).rows())) == 5

    def test_filter(self, table):
        node = Filter(TableScan(table), lambda row: row[0] > 2, "a > 2")
        assert sorted(list(node.rows())) == [(3, 0.3), (4, 0.4), (5, 0.5)]

    def test_project(self, table):
        node = Project(TableScan(table), ["b"])
        assert node.schema.names == ("b",)
        assert (1, ) not in list(node.rows())

    def test_explain_tree(self, table):
        node = Project(Filter(TableScan(table), lambda _row: True, "p"),
                       ["a"])
        text = node.explain()
        assert "Project" in text
        assert "Filter" in text
        assert "TableScan t" in text


class TestLimit:
    def test_limit(self, table):
        assert len(list(Limit(TableScan(table), 2).rows())) == 2

    def test_offset(self, table):
        rows = list(Limit(TableScan(table), 2, offset=1).rows())
        assert rows == [(1, 0.1), (2, 0.2)]

    def test_limit_none_offset_only(self, table):
        assert len(list(Limit(TableScan(table), None, offset=3).rows())) == 2

    def test_invalid(self, table):
        with pytest.raises(ConfigurationError):
            Limit(TableScan(table), -1)
        with pytest.raises(ConfigurationError):
            Limit(TableScan(table), 1, offset=-2)


class TestSortAndTopK:
    def test_in_memory_sort(self, table, schema):
        spec = SortSpec(schema, ["a"])
        rows = list(InMemorySort(TableScan(table), spec).rows())
        assert [r[0] for r in rows] == [1, 2, 3, 4, 5]

    @pytest.mark.parametrize("algorithm", ["histogram", "optimized",
                                           "traditional", "priority_queue"])
    def test_topk_algorithms(self, table, schema, algorithm):
        spec = SortSpec(schema, ["a"])
        node = TopK(TableScan(table), spec, k=3, algorithm=algorithm,
                    memory_rows=100)
        assert [r[0] for r in node.rows()] == [1, 2, 3]

    def test_topk_rejects_unknown_algorithm(self, table, schema):
        spec = SortSpec(schema, ["a"])
        with pytest.raises(ConfigurationError):
            TopK(TableScan(table), spec, k=3, algorithm="quantum")

    def test_topk_stats_available_after_run(self, table, schema):
        spec = SortSpec(schema, ["a"])
        node = TopK(TableScan(table), spec, k=2, memory_rows=100)
        list(node.rows())
        assert node.stats.rows_consumed == 5
        assert node.stats.rows_output == 2

    def test_topk_rerunnable(self, table, schema):
        spec = SortSpec(schema, ["a"])
        node = TopK(TableScan(table), spec, k=2, memory_rows=100)
        first = list(node.rows())
        second = list(node.rows())
        assert first == second
