"""Secondary-storage substrate: spill files, pages, stats and cost model."""

from repro.storage.costmodel import (
    DEFAULT_COST_MODEL,
    IO_BOUND_COST_MODEL,
    SCALED_COST_MODEL,
    CostModel,
    ResourceCost,
)
from repro.storage.pages import DEFAULT_PAGE_BYTES, Page, PageBuilder
from repro.storage.spill import (
    DiskSpillBackend,
    MemorySpillBackend,
    SpillFile,
    SpillManager,
)
from repro.storage.stats import IOStats, OperatorStats, ThreadSafeIOStats

__all__ = [
    "CostModel",
    "ResourceCost",
    "DEFAULT_COST_MODEL",
    "IO_BOUND_COST_MODEL",
    "SCALED_COST_MODEL",
    "Page",
    "PageBuilder",
    "DEFAULT_PAGE_BYTES",
    "SpillFile",
    "SpillManager",
    "MemorySpillBackend",
    "DiskSpillBackend",
    "IOStats",
    "OperatorStats",
    "ThreadSafeIOStats",
]
