"""Sort-key distributions used by the paper's evaluation (Section 5.1.4).

Three families:

* ``uniform`` — what the ``L_ORDERKEY`` column of an unsorted TPC-H
  ``LINEITEM`` table provides.
* ``fal`` — the Faloutsos–Jagadish generator of Zipf-like values,
  ``value(r) = N / r**z`` for rank ``r`` in ``1..N``; the shape parameter
  ``z`` moves the family from uniform-ish (z → 0) to hyperbolic.  The paper
  uses z ∈ {0.5, 1.05, 1.25, 1.5}.
* ``lognormal`` — samples from LogNormal(μ=0, σ=2), modeling dwell times
  and other natural long-tail phenomena.

Two synthetic orderings are added for the overhead experiment (Section 5.5):
``ascending`` (the filter eliminates almost everything immediately) and
``descending`` (the *adversarial* input: the cutoff key sharpens constantly
but never eliminates a single row, exposing pure filter overhead).

All generators are deterministic given a seed and return ``numpy`` arrays;
iterator helpers wrap them for streaming consumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Distribution:
    """A named, parameterized key distribution.

    Attributes:
        name: Registry name, e.g. ``"fal"``.
        label: Display label used in experiment output, e.g. ``"fal-1.25"``.
        sampler: Callable ``(n, rng) -> np.ndarray`` of float64 keys.
    """

    name: str
    label: str
    sampler: Callable[[int, np.random.Generator], np.ndarray]

    def sample(self, n: int, seed: int = 0) -> np.ndarray:
        """Draw ``n`` keys deterministically for ``seed``."""
        if n < 0:
            raise ConfigurationError("sample size must be non-negative")
        rng = np.random.default_rng(seed)
        return self.sampler(n, rng)


def _uniform(n: int, rng: np.random.Generator) -> np.ndarray:
    return rng.random(n)


def _uniform_int(n: int, rng: np.random.Generator) -> np.ndarray:
    # Unsorted order keys: unique-ish integers in a 4x range, as dbgen's
    # sparse orderkeys behave.
    return rng.integers(1, max(2, 4 * n), size=n).astype(np.float64)


def _lognormal(n: int, rng: np.random.Generator) -> np.ndarray:
    return rng.lognormal(mean=0.0, sigma=2.0, size=n)


def _fal(z: float) -> Callable[[int, np.random.Generator], np.ndarray]:
    def sampler(n: int, rng: np.random.Generator) -> np.ndarray:
        if n == 0:
            return np.empty(0, dtype=np.float64)
        ranks = np.arange(1, n + 1, dtype=np.float64)
        values = n / ranks**z
        rng.shuffle(values)
        return values

    return sampler


def _ascending(n: int, rng: np.random.Generator) -> np.ndarray:
    return np.sort(rng.random(n))


def _descending(n: int, rng: np.random.Generator) -> np.ndarray:
    return np.sort(rng.random(n))[::-1].copy()


def fal(z: float) -> Distribution:
    """The Faloutsos–Jagadish (Zipf-like) distribution with shape ``z``."""
    if z < 0:
        raise ConfigurationError("fal shape parameter must be non-negative")
    return Distribution("fal", f"fal-{z:g}", _fal(z))


UNIFORM = Distribution("uniform", "uniform", _uniform)
UNIFORM_INT = Distribution("uniform_int", "uniform-int", _uniform_int)
LOGNORMAL = Distribution("lognormal", "lognormal", _lognormal)
ASCENDING = Distribution("ascending", "ascending", _ascending)
DESCENDING = Distribution("descending", "descending (adversarial)", _descending)

#: The six distributions of Figure 3, in the paper's order.
FIGURE3_DISTRIBUTIONS = (
    UNIFORM,
    LOGNORMAL,
    fal(0.5),
    fal(1.05),
    fal(1.25),
    fal(1.5),
)

_REGISTRY = {
    "uniform": lambda: UNIFORM,
    "uniform_int": lambda: UNIFORM_INT,
    "lognormal": lambda: LOGNORMAL,
    "ascending": lambda: ASCENDING,
    "descending": lambda: DESCENDING,
}


def get_distribution(name: str, **params) -> Distribution:
    """Look up a distribution by name.

    ``"fal"`` requires a ``z`` keyword; spelled parameters are also accepted
    inline, e.g. ``get_distribution("fal-1.25")``.
    """
    if name == "fal":
        if "z" not in params:
            raise ConfigurationError("fal distribution requires z=<shape>")
        return fal(params["z"])
    if name.startswith("fal-"):
        return fal(float(name[len("fal-"):]))
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown distribution {name!r}; known: "
            f"{sorted(_REGISTRY) + ['fal']}"
        ) from None


def key_stream(distribution: Distribution, n: int, seed: int = 0,
               chunk_rows: int = 262_144) -> Iterator[float]:
    """Stream ``n`` keys without materializing them all at once.

    Chunks are sampled independently (seeded per chunk) so memory stays
    bounded for very large ``n``.
    """
    produced = 0
    chunk_index = 0
    while produced < n:
        count = min(chunk_rows, n - produced)
        chunk = distribution.sample(count, seed=seed + chunk_index)
        yield from chunk.tolist()
        produced += count
        chunk_index += 1
