"""Property tests for the binary key codec and offset-value coding.

The codec's one obligation is *order isomorphism*: for any sort spec and
any pair of rows, comparing the encoded ``bytes`` keys must reach exactly
the same verdict (<, ==, >) as comparing the tuple keys
``SortSpec.key`` produces.  Everything downstream (run generation, the
cutoff filter, histograms, merging) only ever compares keys, so this
single property is what makes OVC engines byte-identical to tuple-key
engines.

Offset-value codes get their own invariants: a code of zero exactly means
equal-to-base, codes computed against a common base reconstruct the
comparison verdict, and codes along a sorted run (relative to the run's
first row) never decrease.
"""

from __future__ import annotations

import datetime
import itertools
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KeyEncodingError
from repro.rows.schema import Column, ColumnType, Schema
from repro.rows.sortspec import SortColumn, SortSpec
from repro.sorting.keycodec import compile_keycodec
from repro.sorting.merge import merge_keyed
from repro.sorting.ovc import (
    INITIAL_CODE,
    code_between,
    first_diff,
    merge_coded,
)
from repro.sorting.runs import write_run
from repro.storage.spill import SpillManager

# -- value strategies per column type ------------------------------------

_FLOATS = st.floats(allow_nan=False) | st.sampled_from(
    [0.0, -0.0, math.inf, -math.inf, 5e-324, -5e-324])
_VALUES = {
    ColumnType.INT64: st.integers(-2**63, 2**63 - 1),
    ColumnType.FLOAT64: _FLOATS,
    ColumnType.DECIMAL: _FLOATS | st.integers(-2**40, 2**40),
    ColumnType.STRING: st.text(max_size=12) | st.sampled_from(
        ["", "\x00", "a\x00b", "a", "ab", "müller", "￿"]),
    ColumnType.DATE: st.dates(),
    ColumnType.BOOL: st.booleans(),
}
_TYPES = list(_VALUES)


@st.composite
def spec_and_rows(draw):
    """A random (SortSpec, rows) pair over 1-3 columns of any type."""
    count = draw(st.integers(1, 3))
    types = [draw(st.sampled_from(_TYPES)) for _ in range(count)]
    nullable = [draw(st.booleans()) for _ in range(count)]
    ascending = [draw(st.booleans()) for _ in range(count)]
    schema = Schema([Column(f"c{i}", types[i], nullable=nullable[i])
                     for i in range(count)])
    spec = SortSpec(schema, [SortColumn(f"c{i}", ascending=ascending[i])
                             for i in range(count)])

    def value(i):
        if nullable[i] and draw(st.integers(0, 4)) == 0:
            return None
        return draw(_VALUES[types[i]])

    rows = [tuple(value(i) for i in range(count))
            for _ in range(draw(st.integers(2, 12)))]
    return spec, rows


def verdict(a, b) -> int:
    if a < b:
        return -1
    if b < a:
        return 1
    return 0


@given(spec_and_rows())
@settings(max_examples=300, deadline=None)
def test_encoded_order_is_isomorphic_to_tuple_order(case):
    spec, rows = case
    codec = compile_keycodec(spec)
    assert codec is not None
    tuple_key, encode = spec.key, codec.encode
    for left, right in itertools.combinations(rows, 2):
        expected = verdict(tuple_key(left), tuple_key(right))
        assert verdict(encode(left), encode(right)) == expected, \
            f"{left!r} vs {right!r} under {spec!r}"
        # Equality must agree exactly too (not just trichotomy): OVC
        # treats equal keys as code 0.
        assert ((encode(left) == encode(right))
                == (tuple_key(left) == tuple_key(right)))


@given(spec_and_rows())
@settings(max_examples=200, deadline=None)
def test_sorting_by_encoded_key_matches_tuple_sort(case):
    spec, rows = case
    encode = compile_keycodec(spec).encode
    # Stable sorts + order isomorphism => identical permutations.
    assert sorted(rows, key=encode) == sorted(rows, key=spec.key)


# -- directed edge cases --------------------------------------------------

def _single(ctype, ascending=True, nullable=False):
    schema = Schema([Column("v", ctype, nullable=nullable)])
    spec = SortSpec(schema, [SortColumn("v", ascending=ascending)])
    return compile_keycodec(spec).encode


class TestEncodingEdgeCases:
    def test_negative_zero_equals_zero(self):
        encode = _single(ColumnType.FLOAT64)
        assert encode((0.0,)) == encode((-0.0,))

    def test_nan_sorts_after_inf_and_before_null(self):
        encode = _single(ColumnType.FLOAT64, nullable=True)
        assert encode((math.inf,)) < encode((math.nan,)) < encode((None,))

    def test_nan_encoding_is_canonical(self):
        encode = _single(ColumnType.FLOAT64)
        assert encode((math.nan,)) == encode((-math.nan,))

    def test_exact_int_in_float_column(self):
        encode = _single(ColumnType.FLOAT64)
        assert encode((2,)) == encode((2.0,))
        assert encode((2,)) < encode((2.5,))

    def test_inexact_int_in_float_column_raises(self):
        encode = _single(ColumnType.FLOAT64)
        with pytest.raises(KeyEncodingError):
            encode((2**53 + 1,))

    def test_huge_int_raises(self):
        encode = _single(ColumnType.INT64)
        with pytest.raises(KeyEncodingError):
            encode((2**1100,))

    def test_int64_boundaries(self):
        encode = _single(ColumnType.INT64)
        assert encode((-2**63,)) < encode((0,)) < encode((2**63 - 1,))
        for out_of_range in (2**63, -2**63 - 1):
            with pytest.raises(KeyEncodingError):
                encode((out_of_range,))

    def test_datetime_in_date_column_raises(self):
        encode = _single(ColumnType.DATE)
        with pytest.raises(KeyEncodingError):
            encode((datetime.datetime(2020, 1, 1, 12, 30),))

    def test_string_prefix_orders_before_extension(self):
        for ascending in (True, False):
            encode = _single(ColumnType.STRING, ascending=ascending)
            expected = -1 if ascending else 1
            assert verdict(encode(("a",)), encode(("ab",))) == expected

    def test_embedded_nul_strings(self):
        encode = _single(ColumnType.STRING)
        assert encode(("",)) < encode(("\x00",)) < encode(("\x00a",)) \
            < encode(("a",))

    def test_descending_nulls_still_last(self):
        encode = _single(ColumnType.INT64, ascending=False, nullable=True)
        assert encode((-5,)) < encode((-100,)) < encode((None,))

    def test_decode_is_unsupported_by_design(self):
        schema = Schema([Column("v", ColumnType.INT64)])
        codec = compile_keycodec(SortSpec(schema, ["v"]))
        with pytest.raises(NotImplementedError):
            codec.decode(b"\x81\x01")

    def test_preferred_policy(self):
        schema = Schema([
            Column("f", ColumnType.FLOAT64),
            Column("s", ColumnType.STRING),
            Column("n", ColumnType.FLOAT64, nullable=True),
        ])
        bare = compile_keycodec(SortSpec(schema, ["f"]))
        assert not bare.preferred  # primitive tuple key already optimal
        desc_num = compile_keycodec(
            SortSpec(schema, [SortColumn("f", False)]))
        assert not desc_num.preferred  # negation keeps it primitive
        for columns in (["s", "f"], [SortColumn("s", False)], ["n"]):
            assert compile_keycodec(SortSpec(schema, columns)).preferred

    def test_compilation_is_memoized(self):
        schema = Schema([Column("v", ColumnType.STRING)])
        one = compile_keycodec(SortSpec(schema, ["v"]))
        two = compile_keycodec(SortSpec(schema, ["v"]))
        assert one is two


# -- offset-value code invariants ----------------------------------------

_KEYS = st.lists(st.binary(max_size=6), min_size=1, max_size=40)


@given(base=st.binary(max_size=6), key=st.binary(max_size=6))
@settings(max_examples=300, deadline=None)
def test_code_zero_exactly_means_equal(base, key):
    if key >= base:  # codes are only defined for key >= base
        assert (code_between(base, key) == 0) == (key == base)


@given(base=st.binary(max_size=6), keys=st.lists(
    st.binary(max_size=6), min_size=2, max_size=2))
@settings(max_examples=300, deadline=None)
def test_codes_against_common_base_reconstruct_comparisons(base, keys):
    a, b = sorted(keys)
    if a < base:
        return
    code_a, code_b = code_between(base, a), code_between(base, b)
    if code_a != code_b:
        # Differing codes against a common base decide the comparison
        # outright — the tree-of-losers' one-integer fast path.
        assert (code_a < code_b) == (a < b)


@given(keys=_KEYS)
@settings(max_examples=300, deadline=None)
def test_codes_relative_to_first_row_never_decrease(keys):
    keys.sort()
    base = keys[0]
    codes = [code_between(base, key) for key in keys]
    assert codes == sorted(codes)


@given(a=st.binary(max_size=8), b=st.binary(max_size=8))
@settings(max_examples=300, deadline=None)
def test_first_diff_is_the_first_differing_offset(a, b):
    d = first_diff(a, b)
    assert a[:d] == b[:d]
    if a != b:
        assert a[d:d + 1] != b[d:d + 1]
    else:
        assert d == len(a) == len(b)


@given(runs_keys=st.lists(_KEYS, min_size=1, max_size=5))
@settings(max_examples=120, deadline=None)
def test_merge_coded_equals_merge_keyed(runs_keys):
    """The tree of losers and the heap produce the same stable stream."""
    encode = lambda row: row[0]  # rows carry their byte key  # noqa: E731
    with SpillManager() as spill:
        runs = []
        for run_id, keys in enumerate(runs_keys):
            keys.sort()
            runs.append(write_run(
                spill, run_id, ((key, (key, run_id)) for key in keys)))
        coded = [(key, row) for key, row, _code in
                 merge_coded(runs, encode)]
        keyed = list(merge_keyed(runs, encode))
    assert coded == keyed
    assert [key for key, _row in coded] == sorted(
        itertools.chain.from_iterable(runs_keys))


@given(runs_keys=st.lists(_KEYS, min_size=1, max_size=4))
@settings(max_examples=120, deadline=None)
def test_merge_coded_output_codes_chain_previous_output(runs_keys):
    """Each yielded code is the row's OVC relative to the previous
    yielded key (INITIAL_CODE for the first), so intermediate merge
    steps can persist them without re-deriving anything."""
    encode = lambda row: row[0]  # noqa: E731
    with SpillManager() as spill:
        runs = []
        for run_id, keys in enumerate(runs_keys):
            keys.sort()
            runs.append(write_run(
                spill, run_id, ((key, (key, run_id)) for key in keys)))
        previous = None
        for key, _row, code in merge_coded(runs, encode):
            if previous is None:
                assert code == INITIAL_CODE
            else:
                assert code == code_between(previous, key)
            previous = key
