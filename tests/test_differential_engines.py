"""Cross-engine differential suite: every engine, one specification.

Hypothesis drives the same ``(rows, k, sort spec, memory budget, batch
size)`` through every top-k execution surface in the repo —

* ``HistogramTopK.execute`` (the row engine, Algorithm 1),
* ``HistogramTopK.execute_batches`` (the batch-at-a-time path),
* the planner's ``VectorizedTopK`` lowering via ``Database.sql``,
* all three baselines (optimized / traditional / priority-queue),

asserting byte-identical output rows against the oracle
``sorted(rows, key=spec.key)[:k]`` and the spill invariants that make the
paper's comparison meaningful:

* every engine consumes the full input (``rows_consumed == len(rows)``),
* nothing spills more rows than it consumed,
* the in-memory priority queue never spills,
* eager histogram filtering never spills more than the traditional
  full-input sort (the paper's headline inequality),
* the vectorized kernel's spill volume equals the row engine configured
  as the same algorithm (quicksort load-sort-store, unlimited runs,
  50-bucket histograms).

Ties are made harmless by construction: every payload column is a pure
function of the sort key, so rows with equal keys are identical tuples
and any tie order is the same row sequence.

This suite is the regression net under the observability instrumentation
(`repro.obs`): the tracer hooks sit on these exact code paths, and these
tests prove they never perturb results.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.optimized_topk import OptimizedMergeSortTopK
from repro.baselines.priority_queue_topk import PriorityQueueTopK
from repro.baselines.traditional_topk import TraditionalMergeSortTopK
from repro.core.policies import TargetBucketsPolicy
from repro.core.topk import HistogramTopK
from repro.engine.operators import TopK, VectorizedTopK
from repro.engine.session import Database
from repro.rows.batch import batches_from_rows
from repro.rows.schema import Column, ColumnType, Schema
from repro.rows.sortspec import SortColumn, SortSpec
from repro.storage.codec import TypedPageCodec
from repro.storage.spill import DiskSpillBackend, SpillManager
from repro.vectorized.runs import VectorRunDisk, VectorRunStore
from repro.vectorized.topk import VectorizedHistogramTopK

SCHEMA = Schema([
    Column("K", ColumnType.FLOAT64),
    Column("P", ColumnType.INT64),
])

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)


def make_rows(keys: list[float]) -> list[tuple]:
    """Rows whose payload is a function of the key (tie-safe)."""
    return [(float(key), hash(key) % 1_000) for key in keys]


def make_spec(ascending: bool) -> SortSpec:
    return SortSpec(SCHEMA, [SortColumn("K", ascending=ascending)])


def vectorized_reference(spec: SortSpec, k: int,
                         memory_rows: int) -> HistogramTopK:
    """The row engine configured exactly as the vectorized kernel."""
    return HistogramTopK(
        spec, k, memory_rows,
        run_generation="quicksort", run_size_limit=None,
        sizing_policy=TargetBucketsPolicy(buckets_per_run=50, capped=True))


@given(keys=st.lists(finite_floats, min_size=0, max_size=300),
       k=st.integers(1, 50),
       memory=st.integers(2, 64),
       batch_rows=st.integers(1, 96),
       ascending=st.booleans())
@settings(max_examples=150, deadline=None)
def test_all_engines_agree(keys, k, memory, batch_rows, ascending):
    """One input, six execution surfaces, one answer."""
    rows = make_rows(keys)
    spec = make_spec(ascending)
    oracle = sorted(rows, key=spec.key)[:k]

    # Row engine (Algorithm 1).
    hist = HistogramTopK(spec, k, memory)
    assert list(hist.execute(iter(rows))) == oracle

    # Batch-at-a-time path, arbitrary chunking.
    hist_batch = HistogramTopK(spec, k, memory)
    assert list(hist_batch.execute_batches(
        batches_from_rows(rows, SCHEMA, batch_rows))) == oracle

    # Baselines.
    optimized = OptimizedMergeSortTopK(spec, k, memory)
    assert list(optimized.execute(iter(rows))) == oracle
    traditional = TraditionalMergeSortTopK(spec, k, memory)
    assert list(traditional.execute(iter(rows))) == oracle
    pq = PriorityQueueTopK(spec, k, memory_rows=None)
    assert list(pq.execute(iter(rows))) == oracle

    # Planner lowering onto the vectorized kernel, end to end.
    db = Database(memory_rows=memory)
    db.register_table("T", SCHEMA, rows)
    order = "" if ascending else " DESC"
    result = db.sql(f"SELECT * FROM T ORDER BY K{order} LIMIT {k}")
    assert isinstance(result.plan, VectorizedTopK)
    assert result.rows == oracle

    # -- spill invariants -------------------------------------------------
    consumed = len(rows)
    for engine in (hist, hist_batch, optimized, traditional):
        assert engine.stats.rows_consumed == consumed
        assert engine.stats.io.rows_spilled >= 0
    for engine in (hist, hist_batch, traditional):
        assert engine.stats.io.rows_spilled <= consumed
    # The optimized baseline's early merge step re-spills its
    # intermediate run (at most k rows per step), so its spill count may
    # exceed the input size by that much.
    assert (optimized.stats.io.rows_spilled
            <= consumed + optimized.early_merge_steps * k)
    assert result.stats.rows_consumed == consumed

    # The in-memory baseline never touches secondary storage.
    assert pq.stats.io.rows_spilled == 0

    # Eager input filtering never spills more than the vanilla full sort.
    assert hist.stats.io.rows_spilled <= traditional.stats.io.rows_spilled

    # The lowered plan spills exactly what the row engine would, when
    # configured as the same algorithm.  The one divergence is an input
    # at or under one memory load: whether that single load becomes a
    # run or an in-place sort differs between the engines (either way at
    # most one memory load moves), so exact equality is asserted only
    # once the input genuinely overflows memory.
    reference = vectorized_reference(spec, k, memory)
    assert list(reference.execute(iter(rows))) == oracle
    if consumed > memory:
        assert result.stats.io.rows_spilled == \
            reference.stats.io.rows_spilled
    else:
        assert reference.stats.io.rows_spilled <= consumed
        assert result.stats.io.rows_spilled <= consumed


@given(keys=st.lists(finite_floats, min_size=0, max_size=250),
       k=st.integers(1, 40),
       offset=st.integers(0, 30),
       memory=st.integers(2, 48))
@settings(max_examples=60, deadline=None)
def test_offset_agreement(keys, k, offset, memory):
    """OFFSET shifts every engine's window identically."""
    rows = make_rows(keys)
    spec = make_spec(True)
    oracle = sorted(rows, key=spec.key)[offset:offset + k]

    hist = HistogramTopK(spec, k, memory, offset=offset)
    assert list(hist.execute(iter(rows))) == oracle

    optimized = OptimizedMergeSortTopK(spec, k, memory, offset=offset)
    assert list(optimized.execute(iter(rows))) == oracle
    traditional = TraditionalMergeSortTopK(spec, k, memory, offset=offset)
    assert list(traditional.execute(iter(rows))) == oracle
    pq = PriorityQueueTopK(spec, k, memory_rows=None, offset=offset)
    assert list(pq.execute(iter(rows))) == oracle

    db = Database(memory_rows=memory)
    db.register_table("T", SCHEMA, rows)
    result = db.sql(f"SELECT * FROM T ORDER BY K LIMIT {k} OFFSET {offset}")
    assert result.rows == oracle


@given(keys=st.lists(st.integers(-50, 50).map(float),
                     min_size=0, max_size=300),
       k=st.integers(1, 40),
       memory=st.integers(2, 48),
       batch_rows=st.integers(1, 64))
@settings(max_examples=60, deadline=None)
def test_heavy_duplicates_agree(keys, k, memory, batch_rows):
    """Duplicate-saturated keys (histogram stress): all engines agree."""
    rows = make_rows(keys)
    spec = make_spec(True)
    oracle = sorted(rows, key=spec.key)[:k]

    hist = HistogramTopK(spec, k, memory)
    assert list(hist.execute(iter(rows))) == oracle
    hist_batch = HistogramTopK(spec, k, memory)
    assert list(hist_batch.execute_batches(
        batches_from_rows(rows, SCHEMA, batch_rows))) == oracle
    traditional = TraditionalMergeSortTopK(spec, k, memory)
    assert list(traditional.execute(iter(rows))) == oracle
    assert hist.stats.io.rows_spilled <= traditional.stats.io.rows_spilled


@pytest.mark.slow_io
@given(keys=st.lists(finite_floats, min_size=0, max_size=250),
       k=st.integers(1, 40),
       memory=st.integers(2, 48),
       batch_rows=st.integers(1, 64),
       background=st.booleans())
@settings(max_examples=40, deadline=None)
def test_disk_backend_typed_codec_agrees(keys, k, memory, batch_rows,
                                         background):
    """Real files + typed codec produce byte-identical results and
    identical *accounting* traffic to the in-memory backend, on all
    three paths (row, batch, vectorized), with and without background
    writers."""
    rows = make_rows(keys)
    spec = make_spec(True)
    oracle = sorted(rows, key=spec.key)[:k]

    baseline = HistogramTopK(spec, k, memory)
    assert list(baseline.execute(iter(rows))) == oracle

    # Row engine on disk with the typed columnar codec.
    with DiskSpillBackend(codec=TypedPageCodec(SCHEMA),
                          background_writes=background) as backend:
        manager = SpillManager(backend=backend)
        disk = HistogramTopK(spec, k, memory, spill_manager=manager)
        assert list(disk.execute(iter(rows))) == oracle
        io = disk.stats.io
        base_io = baseline.stats.io
        assert io.rows_spilled == base_io.rows_spilled
        assert io.bytes_written == base_io.bytes_written
        assert io.bytes_read == base_io.bytes_read
        assert io.write_requests == base_io.write_requests
        if io.rows_spilled:
            # Physical codec traffic exists and is consistent: reads can
            # only decode pages that were encoded.
            assert io.bytes_encoded > 0
            assert io.bytes_decoded <= io.bytes_encoded
        manager.close()

    # Batch path on disk with the default (pickle) codec.
    with DiskSpillBackend(background_writes=background) as backend:
        manager = SpillManager(backend=backend)
        disk_batch = HistogramTopK(spec, k, memory, spill_manager=manager)
        assert list(disk_batch.execute_batches(
            batches_from_rows(rows, SCHEMA, batch_rows))) == oracle
        assert disk_batch.stats.io.rows_spilled == \
            baseline.stats.io.rows_spilled
        manager.close()

    # Vectorized kernel with real run files.
    key_array = np.array([row[0] for row in rows], dtype=np.float64)

    def chunks():
        for start in range(0, len(key_array), batch_rows):
            yield key_array[start:start + batch_rows], None

    mem_kernel = VectorizedHistogramTopK(k, memory)
    mem_keys, _ = mem_kernel.execute(chunks())
    with VectorRunDisk(background_writes=background) as storage:
        disk_kernel = VectorizedHistogramTopK(
            k, memory, store=VectorRunStore(storage=storage))
        disk_keys, _ = disk_kernel.execute(chunks())
    assert disk_keys.tolist() == mem_keys.tolist()
    assert disk_kernel.stats.io.rows_spilled == \
        mem_kernel.stats.io.rows_spilled
    assert disk_kernel.stats.io.bytes_written == \
        mem_kernel.stats.io.bytes_written


@given(keys=st.lists(st.integers(-40, 40), min_size=0, max_size=300),
       k=st.integers(1, 50),
       memory=st.integers(2, 64),
       batch_rows=st.integers(1, 96),
       run_generation=st.sampled_from(
           ["replacement_selection", "quicksort"]),
       fan_in=st.sampled_from([None, 2, 4]))
@settings(max_examples=100, deadline=None)
def test_ovc_engines_match_tuple_engines(keys, k, memory, batch_rows,
                                         run_generation, fan_in):
    """OVC on vs off: byte-identical output and spill volume.

    A multi-column descending spec makes the tuple keys maximally
    composite (``Desc`` wrappers + nested tuples) while the ``-40..40``
    key range forces long shared prefixes in the binary encoding — the
    regime offset-value codes exist for.  The binary encoding is order-
    and equality-isomorphic to the tuple keys, so *every* decision
    (cutoff, truncation, run boundaries, merge ranking) must come out
    the same; only the comparison counters may differ.
    """
    schema = Schema([Column("A", ColumnType.INT64),
                     Column("B", ColumnType.STRING)])
    rows = [(key, f"s{key % 7}") for key in keys]
    spec = SortSpec(schema, [SortColumn("A", ascending=False),
                             SortColumn("B", ascending=False)])
    oracle = sorted(rows, key=spec.key)[:k]

    def run(key_encoding, batched):
        operator = HistogramTopK(
            spec, k, memory, run_generation=run_generation,
            fan_in=fan_in, key_encoding=key_encoding)
        if batched:
            out = list(operator.execute_batches(
                batches_from_rows(rows, schema, batch_rows)))
        else:
            out = list(operator.execute(iter(rows)))
        return out, operator

    out_tuple, eng_tuple = run("tuple", batched=False)
    out_ovc, eng_ovc = run("ovc", batched=False)
    assert out_tuple == oracle
    assert out_ovc == oracle
    assert eng_ovc.key_codec is not None
    assert eng_tuple.key_codec is None
    assert eng_ovc.stats.io.rows_spilled == \
        eng_tuple.stats.io.rows_spilled
    assert eng_ovc.stats.io.runs_written == \
        eng_tuple.stats.io.runs_written

    out_tuple_b, eng_tuple_b = run("tuple", batched=True)
    out_ovc_b, eng_ovc_b = run("ovc", batched=True)
    assert out_tuple_b == oracle
    assert out_ovc_b == oracle
    assert eng_ovc_b.stats.io.rows_spilled == \
        eng_tuple_b.stats.io.rows_spilled

    # "auto" must pick the codec for this spec (composite tuple key).
    out_auto, eng_auto = run("auto", batched=False)
    assert out_auto == oracle
    assert eng_auto.key_codec is not None


def test_ovc_reduces_full_comparisons_on_multi_column_desc():
    """The headline counter claim, deterministically: on a merge-heavy
    multi-column descending workload the loser tree decides most
    tournaments by integer code, cutting full key comparisons by well
    over the 10x the issue demands."""
    import random

    rng = random.Random(23)
    schema = Schema([Column("A", ColumnType.INT64),
                     Column("B", ColumnType.STRING),
                     Column("C", ColumnType.FLOAT64)])
    rows = [(rng.randrange(30), f"tag{rng.randrange(5)}", rng.random())
            for _ in range(40_000)]
    spec = SortSpec(schema, [SortColumn("A", ascending=False),
                             "B", SortColumn("C", ascending=False)])

    def run(key_encoding):
        operator = HistogramTopK(
            spec, k=1_500, memory_rows=400, fan_in=8,
            run_generation="quicksort", key_encoding=key_encoding)
        out = list(operator.execute(iter(rows)))
        return out, operator.stats

    out_tuple, stats_tuple = run("tuple")
    out_ovc, stats_ovc = run("ovc")
    assert out_tuple == out_ovc
    assert stats_tuple.io.rows_spilled == stats_ovc.io.rows_spilled
    assert stats_ovc.io.rows_spilled > 0  # the workload genuinely merges
    assert stats_ovc.code_comparisons > 0
    assert stats_ovc.full_key_comparisons * 5 \
        < stats_tuple.full_key_comparisons


def test_multi_column_key_stays_on_row_engine_and_agrees():
    """A two-column key refuses lowering but still matches the oracle."""
    import random

    rng = random.Random(11)
    schema = Schema([Column("A", ColumnType.INT64),
                     Column("B", ColumnType.FLOAT64)])
    rows = [(rng.randrange(20), rng.random()) for _ in range(4_000)]
    db = Database(memory_rows=300)
    db.register_table("T", schema, rows)
    result = db.sql("SELECT * FROM T ORDER BY A, B DESC LIMIT 500")
    assert isinstance(result.plan, TopK)
    assert not isinstance(result.plan, VectorizedTopK)
    expected = sorted(rows, key=lambda r: (r[0], -r[1]))[:500]
    assert result.rows == expected


@given(keys=st.lists(finite_floats, min_size=0, max_size=300),
       k=st.integers(1, 50),
       memory=st.integers(2, 64),
       ascending=st.booleans())
@settings(max_examples=60, deadline=None)
def test_planner_choice_is_semantically_invisible(keys, k, memory,
                                                  ascending):
    """The cost-based planner's pick never changes the answer: every
    forced physical path returns rows byte-identical to the no-knob
    cost-chosen plan (and to the oracle)."""
    rows = make_rows(keys)
    spec = make_spec(ascending)
    oracle = sorted(rows, key=spec.key)[:k]
    order = "" if ascending else " DESC"
    sql = f"SELECT * FROM T ORDER BY K{order} LIMIT {k}"

    def run(**db_kwargs):
        db = Database(memory_rows=memory, **db_kwargs)
        db.register_table("T", SCHEMA, rows, row_count=len(rows))
        return db.sql(sql).rows

    chosen = run()
    assert chosen == oracle
    for path in ("row", "batch", "vectorized"):
        assert run(force_path=path) == oracle


@given(keys=st.lists(st.integers(-40, 40), min_size=0, max_size=250),
       k=st.integers(1, 40),
       memory=st.integers(2, 48),
       first_desc=st.booleans())
@settings(max_examples=40, deadline=None)
def test_planner_choice_composite_keys_agree(keys, k, memory,
                                             first_desc):
    """Composite string-led keys: the costed encoding pick (OVC) and
    every forced path x encoding combination agree byte-for-byte."""
    schema = Schema([Column("S", ColumnType.STRING),
                     Column("K", ColumnType.INT64)])
    rows = [(f"g{key % 7}", int(key)) for key in keys]
    spec = SortSpec(schema, [SortColumn("S", ascending=not first_desc),
                             SortColumn("K")])
    oracle = sorted(rows, key=spec.key)[:k]
    order = " DESC" if first_desc else ""
    sql = f"SELECT * FROM T ORDER BY S{order}, K LIMIT {k}"

    def run(**db_kwargs):
        db = Database(memory_rows=memory, **db_kwargs)
        db.register_table("T", schema, rows, row_count=len(rows))
        return db.sql(sql).rows

    assert run() == oracle
    for path in ("row", "batch"):
        for encoding in ("ovc", "tuple"):
            assert run(force_path=path,
                       algorithm_options={"key_encoding": encoding}) \
                == oracle


@pytest.mark.slow_io
@given(keys=st.lists(st.integers(-40, 40), min_size=0, max_size=300),
       k=st.integers(1, 50),
       memory=st.integers(2, 48),
       late=st.booleans())
@settings(max_examples=40, deadline=None)
def test_zone_maps_and_late_materialization_agree(keys, k, memory, late):
    """Zone maps on vs off (and eager vs lazy materialization):
    byte-identical output and spill volume.

    Page skipping is a pure read-side pruning of pages that cannot
    contribute a winner, and late materialization only changes *when*
    payload bytes are decoded — neither may change what spills or what
    comes out.  A composite spec engages the binary key codec so pages
    carry ``bytes`` keys (the zone-map precondition).
    """
    schema = Schema([Column("A", ColumnType.INT64),
                     Column("B", ColumnType.STRING)])
    rows = [(key, f"s{key % 7}") for key in keys]
    spec = SortSpec(schema, [SortColumn("A"), SortColumn("B")])
    oracle = sorted(rows, key=spec.key)[:k]

    def run(zone_maps, late_materialization):
        codec = TypedPageCodec(schema, zone_maps=zone_maps,
                               late_materialization=late_materialization,
                               null_key_prefix=b"\x01")
        with DiskSpillBackend(codec=codec) as backend:
            manager = SpillManager(backend=backend, page_bytes=256)
            operator = HistogramTopK(
                spec, k, memory, spill_manager=manager,
                key_encoding="ovc",
                late_materialization=late_materialization)
            out = list(operator.execute(iter(rows)))
            io = operator.stats.io
            manager.close()
        return out, io

    out_plain, io_plain = run(zone_maps=False, late_materialization=False)
    out_zone, io_zone = run(zone_maps=True, late_materialization=late)
    assert out_plain == oracle
    assert out_zone == oracle
    assert io_zone.rows_spilled == io_plain.rows_spilled
    assert io_zone.runs_written == io_plain.runs_written
    assert io_plain.pages_skipped_zone_map == 0


def test_zone_maps_skip_pages_directed():
    """A merge-heavy workload must actually skip pages — the counter the
    differential leg above pins to zero without zone maps."""
    import random

    rng = random.Random(11)
    schema = Schema([Column("A", ColumnType.INT64),
                     Column("B", ColumnType.INT64),
                     Column("P", ColumnType.STRING)])
    rows = [(rng.randrange(10_000), rng.randrange(10_000), "pay" * 12)
            for _ in range(30_000)]
    spec = SortSpec(schema, [SortColumn("A"), SortColumn("B")])
    k, memory = 1_500, 200
    oracle = sorted(rows, key=spec.key)[:k]

    def run(zone_maps, late):
        codec = TypedPageCodec(schema, zone_maps=zone_maps,
                               late_materialization=late,
                               null_key_prefix=b"\x01")
        with DiskSpillBackend(codec=codec) as backend:
            manager = SpillManager(backend=backend, page_bytes=4096)
            operator = HistogramTopK(
                spec, k, memory, spill_manager=manager,
                key_encoding="ovc", late_materialization=late)
            out = list(operator.execute(iter(rows)))
            io = operator.stats.io
            manager.close()
        return out, io

    out_eager, io_eager = run(zone_maps=True, late=False)
    out_lazy, io_lazy = run(zone_maps=True, late=True)
    out_off, io_off = run(zone_maps=False, late=False)
    assert out_eager == oracle
    assert out_lazy == oracle
    assert out_off == oracle
    assert io_eager.pages_skipped_zone_map > 0
    assert io_eager.bytes_skipped_decode > 0
    assert io_lazy.pages_skipped_zone_map > 0
    assert io_lazy.payload_stitch_seconds > 0
    assert io_off.pages_skipped_zone_map == 0
    # Zone maps shrink physical decode traffic on this workload.
    assert io_eager.bytes_decoded < io_off.bytes_decoded
    assert io_eager.rows_spilled == io_lazy.rows_spilled == \
        io_off.rows_spilled
