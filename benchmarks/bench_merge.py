#!/usr/bin/env python
"""Microbenchmark: tuple-key heap merge vs OVC loser-tree merge.

A merge-heavy top-k over a three-column ``ORDER BY B DESC, A, C DESC``
key whose *leading* column is a descending string — the worst case for
tuple keys (tuple comparison scans columns with ``==`` before applying
``<``, so every comparison re-enters the interpreter through
``Desc.__eq__``/``Desc.__lt__`` on the very first column) and the home
turf of the binary key codec + offset-value coding
(``repro.sorting.keycodec`` / ``repro.sorting.ovc``), which decide most
merge tournaments with one integer comparison.

Variants per path (interleaved A/B within each repetition, best-of-N
kept):

* ``tuple`` — ``key_encoding="tuple"``: the pre-codec substrate, binary
  heap over tuple keys;
* ``ovc`` — ``key_encoding="ovc"``: binary keys, persisted offset-value
  codes, tree-of-losers merge.

The row and batch paths run at fan-in 8 (multi-level merge: intermediate
steps rewrite coded runs) and fan-in 64 (single wide final merge).  Both
variants' output rows are asserted identical per configuration.  The
vectorized path is A/B'd as ``tuple`` vs ``auto`` on its natural
single-numeric-column workload: the codec deliberately declines such
specs (``KeyCodec.preferred`` is False — numpy keys are already machine
comparisons), so this leg demonstrates *no regression* rather than a
win.

Alongside wall time, each variant reports the comparison counters
(``full_key_comparisons`` / ``code_comparisons``); the issue's
acceptance bar is a >= 1.3x end-to-end speedup and a >= 10x reduction in
full key comparisons for row/batch.

Results are written as JSON (default ``BENCH_merge.json``) so CI can
smoke-run with a tiny ``--rows`` budget and assert the file parses.

Usage::

    python benchmarks/bench_merge.py                  # 1M rows
    python benchmarks/bench_merge.py --rows 20000 --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.topk import HistogramTopK  # noqa: E402
from repro.datagen.workloads import keys_only_workload  # noqa: E402
from repro.engine.operators import (  # noqa: E402
    Table,
    TableScan,
    VectorizedTopK,
)
from repro.rows.batch import batches_from_rows  # noqa: E402
from repro.rows.schema import Column, ColumnType, Schema  # noqa: E402
from repro.rows.sortspec import SortColumn, SortSpec  # noqa: E402

#: Merge-heavy proportions: a large output relative to the memory
#: budget keeps the cutoff loose, so most input survives to the merge,
#: and memory-sized loads are deep enough that comparisons (not per-row
#: bookkeeping) dominate the run-generation sorts.
MEMORY_FRACTION = 1 / 25
K_FRACTION = 1 / 4

SCHEMA = Schema([
    Column("A", ColumnType.INT64),
    Column("B", ColumnType.STRING),
    Column("C", ColumnType.FLOAT64),
])
SPEC = SortSpec(SCHEMA, [SortColumn("B", ascending=False), "A",
                         SortColumn("C", ascending=False)])

VARIANTS = ["tuple", "ovc"]
BASELINE = "tuple"
FAN_INS = [8, 64]


def make_rows(input_rows: int, seed: int = 7) -> list[tuple]:
    """Low-cardinality leading columns force deep key comparisons: most
    pairs tie on ``B`` (and often ``A``), exactly where offset-value
    codes skip the shared prefix."""
    rng = random.Random(seed)
    names = [f"customer-{i:04d}" for i in range(64)]
    return [(rng.randrange(8), names[rng.randrange(64)],
             rng.randrange(4000) / 16)
            for _ in range(input_rows)]


def sizing(input_rows: int) -> tuple[int, int]:
    memory_rows = max(64, int(input_rows * MEMORY_FRACTION))
    k = max(memory_rows + 1, int(input_rows * K_FRACTION))
    return memory_rows, k


def run_row(rows, memory_rows, k, fan_in, key_encoding):
    operator = HistogramTopK(SPEC, k, memory_rows, fan_in=fan_in,
                             run_generation="quicksort",
                             key_encoding=key_encoding)
    return list(operator.execute(iter(rows))), operator.stats


def run_batch(rows, memory_rows, k, fan_in, key_encoding):
    operator = HistogramTopK(SPEC, k, memory_rows, fan_in=fan_in,
                             run_generation="quicksort",
                             key_encoding=key_encoding)
    return list(operator.execute_batches(
        batches_from_rows(rows, SCHEMA))), operator.stats


PATHS = {"row": run_row, "batch": run_batch}


def measure(rows, memory_rows, k, repeat: int) -> dict:
    results: dict = {}
    for path_name, runner in PATHS.items():
        results[path_name] = {}
        for fan_in in FAN_INS:
            per_variant = {variant: {"seconds": float("inf")}
                           for variant in VARIANTS}
            outputs = {}
            # Interleave the variants within each repetition so drift
            # (thermal, allocator state) hits both sides equally.
            for _ in range(repeat):
                for variant in VARIANTS:
                    started = time.perf_counter()
                    output, stats = runner(rows, memory_rows, k,
                                           fan_in, variant)
                    elapsed = time.perf_counter() - started
                    entry = per_variant[variant]
                    if elapsed < entry["seconds"]:
                        entry.update(
                            seconds=elapsed,
                            rows_per_sec=len(rows) / elapsed,
                            rows_spilled=stats.io.rows_spilled,
                            comparisons_full=stats.full_key_comparisons,
                            comparisons_code_only=stats.code_comparisons,
                        )
                    outputs[variant] = output
            reference = outputs[BASELINE]
            for variant, output in outputs.items():
                if output != reference:
                    raise AssertionError(
                        f"{path_name}/fan_in_{fan_in}/{variant} produced "
                        f"different output rows")
            baseline = per_variant[BASELINE]
            for entry in per_variant.values():
                entry["speedup_vs_baseline"] = \
                    baseline["seconds"] / entry["seconds"]
            full_before = baseline["comparisons_full"]
            full_after = per_variant["ovc"]["comparisons_full"]
            per_variant["ovc"]["full_comparison_reduction"] = (
                full_before / full_after if full_after else float("inf"))
            results[path_name][f"fan_in_{fan_in}"] = per_variant
    return results


def measure_vectorized(input_rows: int, repeat: int) -> dict:
    """No-regression leg: ``auto`` must not perturb the lowered kernel."""
    workload = keys_only_workload(*(
        (input_rows,) + sizing(input_rows)), seed=7)
    rows = list(workload.make_input())

    def run(key_encoding):
        # The planner-equivalent construction: the codec declines the
        # single-float spec, so both settings run the identical kernel.
        table = Table("KEYS", workload.schema, rows)
        operator = VectorizedTopK(TableScan(table), workload.sort_spec,
                                  k=workload.k,
                                  memory_rows=workload.memory_rows)
        return list(operator.rows()), operator.stats

    per_variant = {variant: {"seconds": float("inf")}
                   for variant in ("tuple", "auto")}
    outputs = {}
    for _ in range(repeat):
        for variant in per_variant:
            started = time.perf_counter()
            output, stats = run(variant)
            elapsed = time.perf_counter() - started
            entry = per_variant[variant]
            if elapsed < entry["seconds"]:
                entry.update(seconds=elapsed,
                             rows_per_sec=len(rows) / elapsed,
                             rows_spilled=stats.io.rows_spilled)
            outputs[variant] = output
    if outputs["auto"] != outputs["tuple"]:
        raise AssertionError("vectorized auto/tuple outputs differ")
    baseline = per_variant["tuple"]["seconds"]
    for entry in per_variant.values():
        entry["speedup_vs_baseline"] = baseline / entry["seconds"]
    return {"fan_in_none": per_variant}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=1_000_000,
                        help="input rows (default 1M; CI uses a tiny "
                             "budget)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="interleaved A/B repetitions (best kept)")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_merge.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    memory_rows, k = sizing(args.rows)
    print(f"workload: {args.rows:,} rows, k={k:,}, "
          f"memory={memory_rows:,}, ORDER BY B DESC, A, C DESC",
          flush=True)
    rows = make_rows(args.rows)

    paths = measure(rows, memory_rows, k, args.repeat)
    paths["vectorized"] = measure_vectorized(args.rows, args.repeat)
    report = {
        "benchmark": "merge_substrate",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "workload": {
            "input_rows": args.rows,
            "k": k,
            "memory_rows": memory_rows,
            "sort_spec": str(SPEC),
            "run_generation": "quicksort",
            "backend": "memory",
        },
        "variants": VARIANTS,
        "baseline": BASELINE,
        "paths": paths,
        "ovc_speedup": {
            f"{path}/{config}": entries["ovc"]["speedup_vs_baseline"]
            for path, configs in paths.items()
            for config, entries in configs.items()
            if "ovc" in entries
        },
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    for path, configs in paths.items():
        for config, entries in configs.items():
            print(f"-- {path} {config}")
            for variant, entry in entries.items():
                extra = ""
                if "comparisons_full" in entry:
                    extra = (f", full={entry['comparisons_full']:,} "
                             f"code={entry['comparisons_code_only']:,}")
                print(f"  {variant:>6}: {entry['seconds']:.3f}s "
                      f"({entry['rows_per_sec']:>12,.0f} rows/sec"
                      f"{extra}, {entry['speedup_vs_baseline']:.2f}x)")
    for config, speedup in report["ovc_speedup"].items():
        print(f"{config}: ovc is {speedup:.2f}x over {BASELINE}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
