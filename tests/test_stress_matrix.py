"""Configuration-matrix stress tests.

One end-to-end correctness sweep across the whole configuration space:
run generation x histogram sizing x fan-in x consolidation x offset x
distribution.  Catches interactions no single-feature test exercises.
"""

import itertools
import random

import pytest

from repro.core.policies import policy_for_bucket_count
from repro.core.topk import HistogramTopK
from repro.datagen.distributions import (
    ASCENDING,
    DESCENDING,
    LOGNORMAL,
    UNIFORM,
    fal,
)

KEY = lambda row: row[0]  # noqa: E731

RUN_GENERATION = ("replacement_selection", "quicksort")
BUCKETS = (0, 1, 9, 50)
FAN_IN = (None, 3)
CAPACITY = (None, 6)

MATRIX = list(itertools.product(RUN_GENERATION, BUCKETS, FAN_IN, CAPACITY))


@pytest.fixture(scope="module")
def dataset():
    rng = random.Random(99)
    return [(rng.random(),) for _ in range(6_000)]


@pytest.mark.parametrize(
    "run_generation,buckets,fan_in,capacity", MATRIX,
    ids=[f"{g}-b{b}-f{f}-c{c}" for g, b, f, c in MATRIX])
def test_configuration_matrix(dataset, run_generation, buckets, fan_in,
                              capacity):
    operator = HistogramTopK(
        KEY, 700, 150,
        run_generation=run_generation,
        sizing_policy=policy_for_bucket_count(buckets, capped=False),
        fan_in=fan_in,
        histogram_bucket_capacity=capacity,
    )
    assert list(operator.execute(iter(dataset))) == sorted(dataset)[:700]


@pytest.mark.parametrize("distribution",
                         [UNIFORM, LOGNORMAL, fal(0.5), fal(1.5),
                          ASCENDING, DESCENDING],
                         ids=lambda d: d.label)
@pytest.mark.parametrize("offset", [0, 37, 500])
def test_distribution_offset_matrix(distribution, offset):
    keys = distribution.sample(8_000, seed=5)
    rows = [(float(key),) for key in keys]
    operator = HistogramTopK(KEY, 400, 120, offset=offset)
    expected = sorted(rows)[offset:offset + 400]
    assert list(operator.execute(iter(rows))) == expected


# -- join + grouped plan-shape matrix ------------------------------------

JOIN_PLANS = list(itertools.product(
    ("inner", "left"),          # join type
    ("auto", "hash", "merge"),  # physical join
    (None, True, False),        # pushdown pin
    (150, 100_000),             # memory budget (spilling / in-memory)
))


@pytest.fixture(scope="module")
def join_dataset():
    from repro.rows.schema import Column, ColumnType, Schema

    rng = random.Random(17)
    left_schema = Schema([Column("LID", ColumnType.INT64),
                          Column("JK", ColumnType.INT64, nullable=True),
                          Column("LV", ColumnType.INT64)])
    right_schema = Schema([Column("RID", ColumnType.INT64),
                           Column("RK", ColumnType.INT64, nullable=True),
                           Column("RV", ColumnType.INT64)])
    left = [(i, rng.choice([None] + list(range(12))), rng.randrange(1_000))
            for i in range(5_000)]
    right = [(j, rng.choice([None] + list(range(12))), rng.randrange(10))
             for j in range(60)]
    return left_schema, right_schema, left, right


def _join_oracle(left, right, join_type):
    out = []
    for lrow in left:
        matches = ([r for r in right
                    if r[1] is not None and r[1] == lrow[1]]
                   if lrow[1] is not None else [])
        if matches:
            out.extend(lrow + r for r in matches)
        elif join_type == "left":
            out.append(lrow + (None, None, None))
    return out


@pytest.mark.parametrize(
    "join_type,join_method,pushdown,memory", JOIN_PLANS,
    ids=[f"{t}-{m}-pd{p}-mem{mem}" for t, m, p, mem in JOIN_PLANS])
def test_join_plan_matrix(join_dataset, join_type, join_method,
                          pushdown, memory):
    from repro.engine.session import Database

    left_schema, right_schema, left, right = join_dataset
    db = Database(memory_rows=memory, join_method=join_method,
                  pushdown=pushdown)
    db.register_table("L", left_schema, left, row_count=len(left))
    db.register_table("R", right_schema, right, row_count=len(right))
    op = "LEFT JOIN" if join_type == "left" else "JOIN"
    result = db.sql(f"SELECT * FROM L {op} R ON L.JK = R.RK "
                    "ORDER BY LV, LID, RID LIMIT 300")
    oracle = sorted(_join_oracle(left, right, join_type),
                    key=lambda r: (r[2], r[0], (r[3] is None, r[3] or 0)))
    assert result.rows == oracle[:300]


GROUPED_PLANS = list(itertools.product(
    ("tuple", "ovc", "auto"),   # grouped key encoding
    (3, 40),                    # k per group
    (100, 100_000),             # memory budget
))


@pytest.mark.parametrize(
    "encoding,k,memory", GROUPED_PLANS,
    ids=[f"{e}-k{k}-mem{m}" for e, k, m in GROUPED_PLANS])
def test_grouped_plan_matrix(join_dataset, encoding, k, memory):
    from repro.engine.session import Database

    left_schema, _right_schema, left, _right = join_dataset
    db = Database(memory_rows=memory,
                  algorithm_options={"key_encoding": encoding})
    db.register_table("L", left_schema, left, row_count=len(left))
    result = db.sql("SELECT * FROM L ORDER BY LV, LID "
                    f"LIMIT {k} PER JK")
    by_group = {}
    for row in left:
        by_group.setdefault(row[1], []).append(row)
    expected = []
    for group in sorted(by_group,
                        key=lambda g: (g is None, g if g is not None else 0)):
        expected.extend(
            sorted(by_group[group], key=lambda r: (r[2], r[0]))[:k])
    assert result.rows == expected
