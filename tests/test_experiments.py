"""Tests for the experiment harness and drivers (at tiny scales)."""

import pytest

from repro.datagen.workloads import keys_only_workload
from repro.errors import ConfigurationError
from repro.experiments.figures import (
    cliff_experiment,
    figure2,
    figure5,
    figure6,
    overhead_experiment,
    render_points,
)
from repro.experiments.harness import (
    Comparison,
    PAPER_SCALE,
    QUICK_SCALE,
    Scale,
    compare,
    run_algorithm,
)
from repro.experiments.paper_data import paper_bucket_label_to_boundaries
from repro.experiments.report import generate_report
from repro.experiments.tables import (
    render_table,
    render_table1,
    table1,
    table2,
)

#: 1/100000-paper scale for fast driver tests.
TINY = Scale("tiny", 100_000)


class TestScale:
    def test_rows(self):
        assert PAPER_SCALE.rows(2_000_000_000) == 2_000_000
        assert QUICK_SCALE.rows(7_000_000) == 700

    def test_rows_never_zero(self):
        assert TINY.rows(5) == 1


class TestHarness:
    @pytest.fixture(scope="class")
    def workload(self):
        return keys_only_workload(8_000, 600, 200, seed=1)

    def test_run_algorithm_measures(self, workload):
        result = run_algorithm("histogram", workload)
        assert result.output_rows == 600
        assert result.rows_spilled > 0
        assert result.simulated_seconds > 0
        assert result.wall_seconds > 0

    def test_unknown_algorithm(self, workload):
        with pytest.raises(ConfigurationError):
            run_algorithm("magic", workload)

    def test_compare_shapes(self, workload):
        comparison = compare(workload)
        assert comparison.verify_same_output()
        assert comparison.speedup > 1.0
        assert comparison.spill_reduction > 1.0

    def test_priority_queue_run(self, workload):
        result = run_algorithm("priority_queue", workload)
        assert result.rows_spilled == 0
        assert result.output_rows == 600

    def test_resource_cost(self, workload):
        result = run_algorithm("histogram", workload)
        cost = result.resource_cost(row_bytes=100)
        assert cost.memory_bytes == workload.memory_rows * 100
        assert cost.gigabyte_seconds > 0


class TestPaperBucketMapping:
    def test_mapping(self):
        assert paper_bucket_label_to_boundaries(0) == 0
        assert paper_bucket_label_to_boundaries(1) == 1
        assert paper_bucket_label_to_boundaries(10) == 9
        assert paper_bucket_label_to_boundaries(1000) == 999


class TestTableDrivers:
    def test_table1_render(self):
        text = render_table1(table1())
        assert "0.504" in text
        assert "total runs=39" in text

    def test_table2_rows_annotated(self):
        rows = table2()
        assert all(row.paper_runs is not None for row in rows)
        measured_minus_paper = [row.rows_delta for row in rows]
        assert all(abs(delta) < 50 for delta in measured_minus_paper)

    def test_render_table(self):
        text = render_table(table2(), "Table 2")
        assert "Table 2" in text
        assert "62,781" in text


class TestFigureDrivers:
    def test_figure2_shape(self):
        points = figure2(scale=TINY, distributions=(
            __import__("repro.datagen.distributions",
                       fromlist=["UNIFORM"]).UNIFORM,),
            k_fractions=(0.005, 0.05, 0.2))
        assert len(points) == 3
        # Spill reduction should peak at moderate k, not the largest.
        assert points[1].spill_reduction >= points[2].spill_reduction

    def test_figure5_zero_buckets_weakest(self):
        points = figure5(scale=TINY, bucket_counts=(0, 5, 50))
        by_buckets = {p.x: p.spill_reduction for p in points}
        assert by_buckets[0] < by_buckets[5] <= by_buckets[50] * 1.1

    def test_figure6_cost_advantage_grows_with_input(self):
        points = figure6(scale=TINY, input_multiples=(10, 66))
        small, large = points
        # Ours gets relatively cheaper as the input grows (the paper's
        # trend), overtaking the in-memory algorithm at large inputs.
        assert (large.extra["cost_improvement"]
                > small.extra["cost_improvement"])
        assert large.extra["cost_improvement"] > 1.0
        # The in-memory algorithm stays faster, by a shrinking margin.
        assert (large.extra["in_memory_time_advantage"]
                < small.extra["in_memory_time_advantage"])

    def test_overhead_experiment_keys(self):
        # QUICK_SCALE keeps per-run wall time large enough (~tens of ms)
        # that the overhead ratio is signal, not timer noise.
        result = overhead_experiment(scale=QUICK_SCALE, repeats=3)
        assert result["rows_eliminated_with_filter"] == 0
        assert result["rows_spilled_with"] == result["rows_spilled_without"]
        assert -0.3 < result["overhead_fraction"] < 1.0

    def test_cliff_experiment(self):
        points = cliff_experiment(scale=TINY,
                                  k_over_memory=(0.5, 2.0))
        below, above = points
        assert below.extra["traditional_spilled"] == 0
        assert above.extra["traditional_spilled"] > 0

    def test_render_points(self):
        points = figure5(scale=TINY, bucket_counts=(0, 50))
        text = render_points(points, "Figure 5", "buckets")
        assert "Figure 5" in text
        assert "uniform" in text


class TestReport:
    def test_tables_only_report(self):
        report = generate_report(scale=TINY, include_figures=False)
        assert "# EXPERIMENTS" in report
        assert "Table 4" in report
        assert "62,781" in report
