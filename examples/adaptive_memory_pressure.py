"""Runtime adaptivity under memory pressure (Sections 2.3 and 3.1.1).

The pure priority-queue top-k "may unexpectedly fail" when rows are
unexpectedly large due to variable-size fields, or when the memory
allocation is unexpectedly small due to concurrent activity.  The paper's
operator needs no a-priori choice: it *starts* as a priority queue and
switches to histogram-filtered run generation the moment the output stops
fitting.

This example builds a message table whose body sizes are log-normally
distributed (a few huge outliers), gives the operator a byte budget that
looks sufficient by row count but is not by bytes, and shows the live
switch: same answer, bounded memory, bounded spill.

Run:
    python examples/adaptive_memory_pressure.py
"""

import random

from repro.core.topk import HistogramTopK
from repro.datagen.distributions import LOGNORMAL
from repro.errors import MemoryBudgetExceeded
from repro.baselines import PriorityQueueTopK


def build_messages(count: int, seed: int = 0) -> list[tuple]:
    """(priority, body) rows with heavy-tailed body sizes."""
    rng = random.Random(seed)
    sizes = LOGNORMAL.sample(count, seed=seed) * 60.0
    return [(rng.random(), "m" * max(8, min(int(size), 20_000)))
            for size in sizes]


def row_bytes(row: tuple) -> int:
    return 40 + len(row[1])


def main() -> None:
    messages = build_messages(150_000, seed=4)
    k = 2_000
    byte_budget = 500_000
    # The planner sized the operator assuming small, fixed-size messages
    # — the misprediction Section 2.3 warns about.
    assumed_row_bytes = 64
    planned_rows = byte_budget // assumed_row_bytes  # "7,812 rows fit"
    average = sum(row_bytes(row) for row in messages) // len(messages)
    print(f"{len(messages):,} messages, average row {average} B "
          f"(planner assumed {assumed_row_bytes} B), "
          f"largest {max(row_bytes(r) for r in messages):,} B")
    print(f"requested top {k:,}; byte budget {byte_budget:,} B — "
          f"{planned_rows:,} rows 'fit' on paper, "
          f"~{byte_budget // average:,} actually do\n")

    # The classic in-memory algorithm sized by the honest row capacity
    # simply refuses the workload.
    try:
        PriorityQueueTopK(lambda row: row[0], k,
                          memory_rows=byte_budget // average)
        print("priority queue accepted the workload (unexpected)")
    except MemoryBudgetExceeded as error:
        print(f"priority-queue algorithm: {error}\n")

    # Ours starts as a priority queue (k fits the *planned* row count)
    # and switches live when the byte budget is actually exhausted.
    operator = HistogramTopK(
        lambda row: row[0],
        k=k,
        memory_rows=planned_rows,
        memory_bytes=byte_budget,
        row_size=row_bytes,
    )
    result = list(operator.execute(iter(messages)))
    expected = sorted(messages, key=lambda row: row[0])[:k]
    assert result == expected

    print("histogram top-k (adaptive):")
    print(f"  switched to external regime: {operator.switched_to_external}")
    print(f"  rows spilled: {operator.stats.io.rows_spilled:,} "
          f"of {len(messages):,}")
    print(f"  rows eliminated early: {operator.stats.rows_eliminated:,} "
          f"({operator.stats.elimination_fraction:.1%})")
    print(f"  cutoff filter: {operator.cutoff_filter.describe()}")
    print(f"\ntop message priority: {result[0][0]:.6f}; "
          f"k-th: {result[-1][0]:.6f} — answer verified against a full "
          f"sort")


if __name__ == "__main__":
    main()
