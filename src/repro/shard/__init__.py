"""Multi-process sharded top-k with a shared-memory global cutoff.

The paper's histogram filter eliminates rows against the sharpest known
cutoff; this package runs one query across N worker processes and keeps
that property *global*: every shard's cutoff refinements are published
to a shared-memory seqlock slot, and every shard (plus the coordinator)
filters arrivals against the tightest bound any of them has found.

Modules:

* :mod:`~repro.shard.slot` — the seqlock cutoff cell.
* :mod:`~repro.shard.chunks` — shared-memory chunk transport + cleanup.
* :mod:`~repro.shard.partition` — hash / key-range input partitioners.
* :mod:`~repro.shard.worker` — the per-process kernel driver.
* :mod:`~repro.shard.executor` — the coordinator (feed, exchange,
  collect, OVC or vectorized final merge).
* :mod:`~repro.shard.operator` — the plan operator the planner lowers
  to when ``shards >= 2``.
"""

from repro.shard.chunks import SHM_PREFIX, ShmRegistry, shm_residue
from repro.shard.executor import ShardedTopKExecutor, ShardSummary
from repro.shard.operator import ShardedVectorizedTopK
from repro.shard.partition import (HashPartitioner, RangePartitioner,
                                   make_partitioner)
from repro.shard.slot import SharedCutoffSlot
from repro.shard.worker import ShardConfig

__all__ = [
    "SHM_PREFIX",
    "ShardConfig",
    "ShardSummary",
    "ShardedTopKExecutor",
    "ShardedVectorizedTopK",
    "SharedCutoffSlot",
    "ShmRegistry",
    "HashPartitioner",
    "RangePartitioner",
    "make_partitioner",
    "shm_residue",
]
