#!/usr/bin/env python
"""Microbenchmark: row-at-a-time vs batch vs vectorized-lowered top-k.

Runs the same keys-only top-k workload through the three execution
paths the engine offers and reports rows/sec for each:

* ``row``        — ``HistogramTopK.execute`` (the Volcano path);
* ``batch``      — ``HistogramTopK.execute_batches`` (RowBatch pipeline,
  vectorized arrival admission);
* ``vectorized`` — the planner's :class:`VectorizedTopK` lowering (numpy
  kernels with late-binding row ids).

The input is materialized once and every path consumes the identical
list, so the numbers isolate engine overhead, not data generation.
Results are written as JSON (default ``BENCH_batch.json``) so CI can
smoke-run with a tiny ``--rows`` budget and assert the file parses.

Usage::

    python benchmarks/bench_batch_engine.py                # 1M rows
    python benchmarks/bench_batch_engine.py --rows 20000 --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.topk import HistogramTopK  # noqa: E402
from repro.datagen.workloads import keys_only_workload  # noqa: E402
from repro.engine.operators import (  # noqa: E402
    Table,
    TableScan,
    VectorizedTopK,
)
from repro.rows.batch import batches_from_rows  # noqa: E402

#: The paper's memory : k : input ratios (7M : 30M : 2B), scaled.
MEMORY_FRACTION = 7 / 2_000
K_FRACTION = 30 / 2_000


def build_workload(input_rows: int):
    memory_rows = max(64, int(input_rows * MEMORY_FRACTION))
    k = max(memory_rows + 1, int(input_rows * K_FRACTION))
    return keys_only_workload(input_rows, k, memory_rows, seed=3)


def run_row(workload, rows):
    operator = HistogramTopK(workload.sort_spec, workload.k,
                             workload.memory_rows)
    output = list(operator.execute(iter(rows)))
    return output, operator.stats


def run_batch(workload, rows):
    operator = HistogramTopK(workload.sort_spec, workload.k,
                             workload.memory_rows)
    output = list(operator.execute_batches(
        batches_from_rows(rows, workload.schema)))
    return output, operator.stats


def run_vectorized(workload, rows):
    table = Table("KEYS", workload.schema, rows)
    operator = VectorizedTopK(TableScan(table), workload.sort_spec,
                              k=workload.k,
                              memory_rows=workload.memory_rows)
    output = list(operator.rows())
    return output, operator.stats


PATHS = {
    "row": run_row,
    "batch": run_batch,
    "vectorized": run_vectorized,
}


def measure(workload, rows, repeat: int) -> dict:
    results = {}
    reference = None
    for name, runner in PATHS.items():
        best = float("inf")
        output = stats = None
        for _ in range(repeat):
            started = time.perf_counter()
            output, stats = runner(workload, rows)
            best = min(best, time.perf_counter() - started)
        if reference is None:
            reference = output
        elif output != reference:
            raise AssertionError(
                f"path {name!r} produced different output rows")
        results[name] = {
            "seconds": best,
            "rows_per_sec": workload.input_rows / best,
            "output_rows": len(output),
            "rows_spilled": stats.io.rows_spilled,
        }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=1_000_000,
                        help="input rows (default 1M; CI uses a tiny "
                             "budget)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="timed repetitions per path (best is kept)")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_batch.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    workload = build_workload(args.rows)
    print(f"workload: {workload.name}", flush=True)
    rows = list(workload.make_input())

    paths = measure(workload, rows, args.repeat)
    report = {
        "benchmark": "batch_engine",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "workload": {
            "input_rows": workload.input_rows,
            "k": workload.k,
            "memory_rows": workload.memory_rows,
            "distribution": workload.distribution_label,
        },
        "paths": paths,
        "speedups_vs_row": {
            name: paths[name]["rows_per_sec"] / paths["row"]["rows_per_sec"]
            for name in paths
        },
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    for name, entry in paths.items():
        print(f"{name:>11}: {entry['rows_per_sec']:>12,.0f} rows/sec "
              f"({entry['seconds']:.3f}s, "
              f"spilled {entry['rows_spilled']:,})")
    for name, speedup in report["speedups_vs_row"].items():
        if name != "row":
            print(f"{name} speedup vs row: {speedup:.2f}x")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
