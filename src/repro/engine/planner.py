"""Planner: turn a :class:`ParsedQuery` into a physical operator tree.

Plans are intentionally simple — scan, optional filter, then either a
top-k, a full sort, or a plain limit, then a projection.  The paper
makes the top-k *algorithm* choice moot (the histogram operator adapts
at runtime, Section 5.2), but everything *around* the operator is a
genuine optimization problem: row vs batch vs vectorized vs sharded
execution, tuple vs order-preserving-byte key encoding, merge fan-in,
and worker count.  Those choices are made here by enumerating the
eligible candidates and costing each with the
:class:`~repro.storage.costmodel.CostModel`, fed by the statistics
catalog (:mod:`repro.stats`) when one is attached — with every historic
knob (``vectorize=``, ``shards=``, ``key_encoding``, ``fan_in``,
``path=``) retained as an override that pins the decision.
"""

from __future__ import annotations

import operator as _operator
import os
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.engine.operators import (
    Filter,
    GroupedTopKOperator,
    InMemorySort,
    Limit,
    Operator,
    Project,
    SegmentedTopKOperator,
    Table,
    TableScan,
    TopK,
    VectorizedTopK,
)
from repro.engine.sql import Comparison, ParsedQuery, cutoff_scope
from repro.errors import PlanError, SchemaError
from repro.rows.batch import numeric_key_column
from repro.rows.schema import Schema
from repro.rows.sortspec import SortColumn, SortSpec
from repro.sorting.keycodec import compile_keycodec
from repro.storage.costmodel import CostModel, DEFAULT_COST_MODEL, PlanCost
from repro.storage.spill import SpillManager

_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": _operator.eq,
    "!=": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}

#: Input cardinality assumed when neither the table nor the catalog
#: knows (callable sources before their first scan).
DEFAULT_ROW_ESTIMATE = 100_000

#: Fallback selectivities when no column sketch is available (the
#: textbook System-R defaults).
_DEFAULT_SELECTIVITY = {"=": 0.1, "!=": 0.9}
_DEFAULT_RANGE_SELECTIVITY = 1 / 3


def _resolve_column(schema: Schema, name: str) -> str:
    """Case-insensitive column lookup returning the canonical name."""
    try:
        return schema.resolve(name)
    except SchemaError as exc:
        raise PlanError(str(exc)) from None


def vectorized_lowering_eligible(
    spec: SortSpec,
    *,
    algorithm: str = "histogram",
    algorithm_options: dict | None = None,
    cutoff_seed: Any = None,
) -> bool:
    """Whether a plain top-k may lower onto the numpy kernels.

    The single shared predicate for both the vectorized and the sharded
    lowering (the sharded executor runs the same kernel per worker).
    Lowering requires every condition the kernels assume:

    * the paper's histogram algorithm with no ablation options — except
      ``key_encoding="auto"``, the row engine's default, under which the
      binary key codec declines single-numeric-column specs anyway
      (exactly the specs that lower); a forced ``"ovc"``/``"tuple"``
      pins the query to the row engine;
    * no ``cutoff_seed`` (the kernels have no stale-seed detection;
      seeded repeats run on the row engine);
    * a single non-nullable numeric ORDER BY column, so batch key
      columns extract as float64 arrays (numpy present).
    """
    options = {key: value
               for key, value in (algorithm_options or {}).items()
               if not (key == "key_encoding" and value == "auto")}
    if algorithm != "histogram" or options:
        return False
    if cutoff_seed is not None:
        return False
    return numeric_key_column(spec) is not None


def _compile_predicates(schema: Schema,
                        predicates: list[Comparison]):
    """Compile WHERE conjuncts into one callable plus a description."""
    compiled = []
    parts = []
    for predicate in predicates:
        column = _resolve_column(schema, predicate.column)
        index = schema.index_of(column)
        comparator = _COMPARATORS[predicate.op]
        value = predicate.value
        compiled.append((index, comparator, value))
        parts.append(f"{column} {predicate.op} {predicate.value!r}")

    def test(row: tuple) -> bool:
        return all(comparator(row[index], value)
                   for index, comparator, value in compiled)

    return test, " AND ".join(parts)


@dataclass(frozen=True)
class Candidate:
    """One costed physical alternative for a plain top-k plan."""

    path: str              # "row" | "batch" | "vectorized" | "sharded"
    key_encoding: str      # "tuple" | "ovc" | "-" (vectorized paths)
    shards: int
    cost: PlanCost

    def label(self) -> str:
        encoding = "" if self.key_encoding == "-" \
            else f"/{self.key_encoding}"
        shards = f"x{self.shards}" if self.shards > 1 else ""
        return f"{self.path}{encoding}{shards}"


@dataclass(frozen=True)
class PlanDecision:
    """The planner's costed choice for one top-k query, kept on the
    operator node for ``EXPLAIN`` / ``EXPLAIN ANALYZE`` auditing."""

    chosen: Candidate
    candidates: tuple[Candidate, ...]
    #: Estimated input cardinality (after WHERE selectivity).
    estimated_rows: float
    #: Estimated WHERE selectivity applied to the base cardinality
    #: (1.0 when the query has no predicates).
    estimated_selectivity: float
    #: Where the estimates came from: ``"observed"`` (post-execution
    #: feedback for this exact scope), ``"catalog"`` (column sketches),
    #: ``"table"`` (registered row count only), or ``"default"``.
    stats_source: str
    #: Knobs that pinned (parts of) the decision, e.g. ``("shards",)``.
    forced: tuple[str, ...] = field(default_factory=tuple)

    def describe(self) -> str:
        cost = self.chosen.cost
        fan_in = cost.fan_in if cost.fan_in is not None else "-"
        lines = [
            (f"Planner: path={self.chosen.path} "
             f"key_encoding={self.chosen.key_encoding} "
             f"fan_in={fan_in} shards={self.chosen.shards} "
             f"cost={cost.seconds:.4f}s [stats={self.stats_source}]"),
            (f"  estimated: rows_in={self.estimated_rows:.0f} "
             f"(selectivity {self.estimated_selectivity:.3f}) "
             f"rows_spilled={cost.rows_spilled:.0f} runs={cost.runs} "
             f"merge_passes={cost.merge_passes} "
             f"cpu={cost.cpu_seconds:.4f}s io={cost.io_seconds:.4f}s"),
        ]
        if self.forced:
            lines.append(f"  forced by: {', '.join(self.forced)}")
        ranked = sorted(self.candidates, key=lambda c: c.cost.seconds)
        lines.append("  candidates: " + " | ".join(
            f"{candidate.label()}={candidate.cost.seconds:.4f}s"
            for candidate in ranked))
        return "\n".join(lines)


class Planner:
    """Builds physical plans for parsed queries.

    Args:
        memory_rows: Per-operator memory budget in rows.
        algorithm: Top-k algorithm for ORDER BY + LIMIT queries.
        spill_manager_factory: Zero-argument factory for each query's spill
            substrate (lets a session share I/O accounting).
        algorithm_options: Extra keyword arguments for the top-k operator's
            algorithm (e.g. ``sizing_policy=...``).  Any option beyond
            ``key_encoding`` pins plans to the row engine, whose behavior
            the knobs configure; an explicit ``key_encoding`` pins the
            encoding decision.
        vectorize: Allow lowering plain histogram top-k plans onto the
            vectorized numpy kernels (see
            :func:`vectorized_lowering_eligible`).  ``False`` pins every
            plan to the row-engine operator.
        shards: Worker-process count for sharded execution.  ``1`` (the
            default) keeps plans single-process; an integer ``>= 2`` is a
            placement directive — eligible plans shard, exactly as
            before the cost-based planner; ``"auto"`` lets the cost
            model pick the count (including 1) up to the machine's CPUs.
        shard_options: Extra keyword arguments for
            :class:`~repro.shard.executor.ShardedTopKExecutor`
            (``partition=``, ``exchange=``, ``spill=``, ...) plus the
            planner-level ``min_rows_per_shard`` threshold.
        cost_model: The :class:`~repro.storage.costmodel.CostModel`
            pricing the candidates.
        stats_catalog: Optional :class:`~repro.stats.StatsCatalog`
            feeding cardinality/selectivity estimates (the session wires
            its own by default).
        path: Force one physical path (``"row"``, ``"batch"``,
            ``"vectorized"``, ``"sharded"``) instead of costing; the
            benchmark harness's hand-picking knob.
    """

    def __init__(
        self,
        memory_rows: int = 100_000,
        algorithm: str = "histogram",
        spill_manager_factory: Callable[[], SpillManager] | None = None,
        algorithm_options: dict | None = None,
        vectorize: bool = True,
        shards: int | str = 1,
        shard_options: dict | None = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        stats_catalog=None,
        path: str | None = None,
    ):
        self.memory_rows = memory_rows
        self.algorithm = algorithm
        self.spill_manager_factory = spill_manager_factory or SpillManager
        self.algorithm_options = algorithm_options or {}
        self.vectorize = vectorize
        self.shards = shards
        self.shard_options = dict(shard_options or {})
        self.min_rows_per_shard = self.shard_options.pop(
            "min_rows_per_shard", 50_000)
        self.cost_model = cost_model
        self.stats_catalog = stats_catalog
        if path is not None and path not in ("row", "batch", "vectorized",
                                             "sharded"):
            raise PlanError(f"unknown forced path {path!r}")
        self.path = path

    # -- estimation ------------------------------------------------------

    def _table_stats(self, table: Table):
        if self.stats_catalog is None:
            return None
        return self.stats_catalog.get(table.name, table.version)

    def _estimate_input(self, query: ParsedQuery, table: Table,
                        stats) -> tuple[float, float, float, str]:
        """``(rows_in, row_bytes, selectivity, source)`` for costing."""
        base = None
        source = "default"
        if stats is not None and stats.row_count is not None:
            base = stats.row_count
            source = "catalog"
        if base is None and table.row_count is not None:
            base = table.row_count
            source = "table"
        if base is None:
            base = DEFAULT_ROW_ESTIMATE
        selectivity = 1.0
        if query.predicates:
            observed = None
            if stats is not None:
                scope = cutoff_scope(query)
                if scope is not None:
                    observed = stats.observed.get(scope)
            if observed is not None:
                selectivity = min(1.0, observed / base) if base else 1.0
                source = "observed"
            else:
                for predicate in query.predicates:
                    selectivity *= self._predicate_selectivity(
                        table, stats, predicate)
        row_bytes = None
        if stats is not None and stats.avg_row_bytes is not None:
            row_bytes = stats.avg_row_bytes
        if row_bytes is None:
            row_bytes = self._schema_row_bytes(table.schema)
        return base * selectivity, row_bytes, selectivity, source

    def _predicate_selectivity(self, table: Table, stats,
                               predicate: Comparison) -> float:
        sketch = None
        if stats is not None:
            try:
                column = table.schema.resolve(predicate.column)
            except SchemaError:
                column = predicate.column
            sketch = stats.column(column)
        if sketch is not None and sketch.rows:
            return max(1e-6, sketch.selectivity_cmp(predicate.op,
                                                    predicate.value))
        if predicate.op in _DEFAULT_SELECTIVITY:
            return _DEFAULT_SELECTIVITY[predicate.op]
        return _DEFAULT_RANGE_SELECTIVITY

    @staticmethod
    def _schema_row_bytes(schema: Schema) -> float:
        total = 16.0
        for column in schema.columns:
            width = column.type.fixed_width
            total += width if width is not None else 20.0
        return total

    # -- candidate enumeration / costing ---------------------------------

    def _encoding_candidates(self, spec: SortSpec) -> list[str]:
        """Eligible key encodings for the row engine, pinned or costed."""
        pinned = self.algorithm_options.get("key_encoding")
        if pinned is not None and pinned != "auto":
            return [pinned]
        if self.algorithm != "histogram":
            return ["tuple"]
        codec = compile_keycodec(spec)
        if codec is None:
            return ["tuple"]
        if codec.preferred:
            # Composite specs: both encodings work; the cost model
            # decides (comparison savings vs encode overhead).
            return ["ovc", "tuple"]
        # Bare-primitive specs: the codec declines by policy — byte
        # keys would defeat the vectorized batch admission filter.
        return ["tuple"]

    def _shard_counts(self, table: Table, shards: int | str) -> list[int]:
        """Worker counts worth costing (gated on table size)."""
        if shards == "auto":
            cpus = os.cpu_count() or 1
            counts = [n for n in (2, 4, 8, 16)
                      if n <= cpus and self._large_enough(table, n)]
            return counts
        if isinstance(shards, int) and shards >= 2 \
                and self._large_enough(table, shards):
            return [shards]
        return []

    def _large_enough(self, table: Table | None, shards: int) -> bool:
        row_count = getattr(table, "row_count", None)
        return row_count is None or row_count >= shards \
            * self.min_rows_per_shard

    def _decide_topk(self, spec: SortSpec, query: ParsedQuery,
                     table: Table, memory_rows: int, cutoff_seed: Any,
                     shards: int | str) -> PlanDecision:
        """Enumerate eligible candidates, cost each, pick the cheapest."""
        stats = self._table_stats(table)
        rows, row_bytes, selectivity, source = self._estimate_input(
            query, table, stats)
        needed = query.limit + query.offset
        key_columns = len(spec.columns)
        forced: list[str] = []

        def cost(path: str, encoding: str, n_shards: int = 1) -> PlanCost:
            return self.cost_model.topk_plan_cost(
                rows=rows, row_bytes=row_bytes, needed=needed,
                memory_rows=memory_rows, path=path,
                key_columns=key_columns,
                key_encoding=encoding if encoding != "-" else "tuple",
                desc_obj_columns=spec.desc_object_columns,
                fan_in=self.algorithm_options.get("fan_in"),
                shards=n_shards)

        # Enumeration order doubles as the cost tie-break (``min`` keeps
        # the first of equals): vectorized before the row engine, batch
        # before row, so degenerate inputs (zero estimated rows) still
        # get the historically-preferred plan.
        candidates: list[Candidate] = []
        vector_ok = self.vectorize and vectorized_lowering_eligible(
            spec, algorithm=self.algorithm,
            algorithm_options=self.algorithm_options,
            cutoff_seed=cutoff_seed)
        if vector_ok:
            candidates.append(Candidate("vectorized", "-", 1,
                                        cost("vectorized", "-")))
            for count in self._shard_counts(table, shards):
                candidates.append(Candidate("sharded", "-", count,
                                            cost("sharded", "-", count)))
        for encoding in self._encoding_candidates(spec):
            candidates.append(Candidate("batch", encoding, 1,
                                        cost("batch", encoding)))
            candidates.append(Candidate("row", encoding, 1,
                                        cost("row", encoding)))

        eligible = candidates
        if self.path is not None:
            forced.append(f"path={self.path}")
            eligible = [c for c in candidates if c.path == self.path]
            if not eligible:
                raise PlanError(
                    f"forced path {self.path!r} is not eligible for this "
                    f"query (candidates: "
                    f"{sorted({c.path for c in candidates})})")
        elif isinstance(shards, int) and shards >= 2:
            # An explicit worker count is a placement directive, exactly
            # as before the cost-based planner: eligible plans shard.
            sharded = [c for c in eligible if c.path == "sharded"]
            if sharded:
                forced.append("shards")
                eligible = sharded
        if not self.vectorize:
            forced.append("vectorize=False")
        if self.algorithm_options.get("key_encoding") not in (None, "auto"):
            forced.append("key_encoding")
        if self.algorithm_options.get("fan_in") is not None:
            forced.append("fan_in")

        chosen = min(eligible, key=lambda c: c.cost.seconds)
        return PlanDecision(
            chosen=chosen,
            candidates=tuple(candidates),
            estimated_rows=rows,
            estimated_selectivity=selectivity,
            stats_source=source,
            forced=tuple(forced),
        )

    def _build_topk(self, decision: PlanDecision, node: Operator,
                    spec: SortSpec, query: ParsedQuery, memory_rows: int,
                    cutoff_seed: Any, tracer) -> Operator:
        """Materialize the chosen candidate as a physical operator."""
        chosen = decision.chosen
        if chosen.path == "sharded":
            from repro.shard.operator import ShardedVectorizedTopK

            operator = ShardedVectorizedTopK(
                node,
                sort_spec=spec,
                k=query.limit,
                shards=chosen.shards,
                offset=query.offset,
                memory_rows=memory_rows,
                tracer=tracer,
                shard_options=dict(self.shard_options),
            )
        elif chosen.path == "vectorized":
            operator = VectorizedTopK(
                node,
                sort_spec=spec,
                k=query.limit,
                offset=query.offset,
                memory_rows=memory_rows,
                tracer=tracer,
            )
        else:
            options = dict(self.algorithm_options)
            if self.algorithm == "histogram":
                options["key_encoding"] = chosen.key_encoding
            operator = TopK(
                node,
                sort_spec=spec,
                k=query.limit,
                offset=query.offset,
                algorithm=self.algorithm,
                memory_rows=memory_rows,
                spill_manager=self.spill_manager_factory(),
                algorithm_options=options,
                cutoff_seed=cutoff_seed,
                tracer=tracer,
                execution=chosen.path,
            )
        operator.decision = decision
        return operator

    @staticmethod
    def _shared_sorted_prefix(table: Table,
                              sort_columns: list[SortColumn]) -> int:
        """How many leading ORDER BY columns the table's physical order
        already provides (ascending only)."""
        shared = 0
        for declared, requested in zip(table.sorted_by, sort_columns):
            if not requested.ascending or requested.name != declared:
                break
            shared += 1
        return shared

    def plan(
        self,
        query: ParsedQuery,
        table: Table,
        *,
        memory_rows: int | None = None,
        cutoff_seed: Any = None,
        tracer=None,
        shards: int | str | None = None,
    ) -> Operator:
        """Produce the physical plan for ``query`` over ``table``.

        Args:
            memory_rows: Per-query override of the planner's default
                operator memory budget — the hook a memory governor uses
                to shrink a query's lease under pressure (the operator
                then spills earlier instead of failing).
            cutoff_seed: Optional initial cutoff bound for a plain top-k
                plan (cutoff reuse; see ``HistogramTopK``).  Ignored by
                plans that never build a histogram filter (sorted-prefix
                shortcuts, grouped/segmented operators, full sorts).
            tracer: Optional :class:`repro.obs.trace.Tracer` attached to
                the plan's top-k operator (and its spill substrate).
            shards: Per-query override of the planner's default worker
                count for sharded execution (``None`` → the planner
                default; ``1`` forces single-process; ``"auto"`` costs
                the count).
        """
        if memory_rows is None:
            memory_rows = self.memory_rows
        node: Operator = TableScan(table)

        if query.predicates:
            predicate, description = _compile_predicates(
                table.schema, query.predicates)
            node = Filter(node, predicate, description)

        if query.order_by:
            sort_columns = [
                SortColumn(_resolve_column(table.schema, item.column),
                           ascending=item.ascending)
                for item in query.order_by
            ]
            spec = SortSpec(table.schema, sort_columns)
            # Section 4.2: exploit a physical sort order shared with the
            # ORDER BY clause.  Filters do not disturb row order, so the
            # table's declared order survives the Filter node.
            shared = self._shared_sorted_prefix(table, sort_columns)
            if query.is_grouped_topk:
                node = GroupedTopKOperator(
                    node,
                    sort_spec=spec,
                    group_column=_resolve_column(table.schema,
                                                 query.per_column),
                    k=query.limit,
                    memory_rows=memory_rows,
                    spill_manager=self.spill_manager_factory(),
                )
            elif (query.limit is not None
                    and shared == len(sort_columns)):
                # The input is already sorted as requested: trivial.
                node = Limit(node, query.limit, query.offset)
            elif query.limit is not None and shared >= 1:
                segmented = SegmentedTopKOperator(
                    node,
                    segment_columns=[column.name for column
                                     in sort_columns[:shared]],
                    remainder_spec=SortSpec(table.schema,
                                            sort_columns[shared:]),
                    k=query.limit + query.offset,
                    memory_rows=memory_rows,
                    spill_manager=self.spill_manager_factory(),
                )
                node = (Limit(segmented, query.limit, query.offset)
                        if query.offset else segmented)
            elif query.limit is not None:
                decision = self._decide_topk(
                    spec, query, table, memory_rows, cutoff_seed,
                    self.shards if shards is None else shards)
                node = self._build_topk(decision, node, spec, query,
                                        memory_rows, cutoff_seed, tracer)
            else:
                node = InMemorySort(node, spec)
                if query.offset:
                    node = Limit(node, None, query.offset)
        elif query.limit is not None or query.offset:
            node = Limit(node, query.limit, query.offset)

        if query.columns is not None:
            canonical = [_resolve_column(table.schema, name)
                         for name in query.columns]
            node = Project(node, canonical)
        return node
