"""Regression tests pinning the reproduction against the paper's tables.

These tests hold the deterministic analysis model to the numbers published
in the SIGMOD 2020 paper (Section 3.2).  Tolerances: run counts exact,
spilled-row counts within ±0.2% (the paper's own numbers carry rounding
from its expected-value arithmetic), cutoffs within 0.1%.
"""

import pytest

from repro.core.analysis import simulate_uniform
from repro.experiments import paper_data
from repro.experiments.paper_data import paper_bucket_label_to_boundaries


def assert_close_rows(measured: int, paper: int, rel: float = 0.002):
    assert measured == pytest.approx(paper, rel=rel, abs=4)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return simulate_uniform(1_000_000, 5_000, 1_000, 9,
                                keep_traces=True)

    def test_headline(self, result):
        assert result.runs == 39
        assert result.rows_spilled < 35_000

    @pytest.mark.parametrize("run", sorted(paper_data.TABLE1_ROWS))
    def test_remaining_input_per_run(self, result, run):
        remaining, _cutoff, _deciles = paper_data.TABLE1_ROWS[run]
        trace = result.traces[run - 1]
        assert trace.remaining_before == pytest.approx(remaining, abs=5)

    @pytest.mark.parametrize("run", sorted(paper_data.TABLE1_ROWS))
    def test_cutoff_per_run(self, result, run):
        _remaining, cutoff, _deciles = paper_data.TABLE1_ROWS[run]
        trace = result.traces[run - 1]
        if cutoff is None:
            assert trace.cutoff_before is None
        else:
            assert trace.cutoff_before == pytest.approx(cutoff, rel=1e-3)

    @pytest.mark.parametrize("run", [1, 7, 8, 9, 10])
    def test_decile_keys_per_run(self, result, run):
        _remaining, _cutoff, deciles = paper_data.TABLE1_ROWS[run]
        trace = result.traces[run - 1]
        for measured, expected in zip(trace.boundary_keys, deciles):
            if expected is None:
                continue
            assert measured == pytest.approx(expected, rel=1e-3)


class TestTable2:
    @pytest.mark.parametrize("label", sorted(paper_data.TABLE2))
    def test_row(self, label):
        runs, rows, cutoff, _ratio = paper_data.TABLE2[label]
        result = simulate_uniform(
            1_000_000, 5_000, 1_000,
            paper_bucket_label_to_boundaries(label))
        assert result.runs == runs
        assert_close_rows(result.rows_spilled, rows)
        if cutoff is not None:
            assert result.final_cutoff == pytest.approx(cutoff, rel=1e-3)


class TestTable3:
    @pytest.mark.parametrize("k", sorted(paper_data.TABLE3))
    def test_row(self, k):
        runs, rows, cutoff, _ratio = paper_data.TABLE3[k]
        result = simulate_uniform(1_000_000, k, 1_000, 9)
        assert result.runs == pytest.approx(runs, abs=1)
        assert_close_rows(result.rows_spilled, rows, rel=0.01)
        assert result.final_cutoff == pytest.approx(cutoff, rel=5e-3)

    @pytest.mark.parametrize("label",
                             sorted(paper_data.TABLE3_K50000_BY_BUCKETS))
    def test_k50000_histogram_variants(self, label):
        runs, rows, cutoff, _ratio = \
            paper_data.TABLE3_K50000_BY_BUCKETS[label]
        result = simulate_uniform(
            1_000_000, 50_000, 1_000,
            paper_bucket_label_to_boundaries(label))
        assert result.runs == pytest.approx(runs, abs=2)
        assert_close_rows(result.rows_spilled, rows, rel=0.01)
        assert result.final_cutoff == pytest.approx(cutoff, rel=5e-3)


class TestTable4:
    @pytest.mark.parametrize("input_rows", sorted(paper_data.TABLE4))
    def test_row(self, input_rows):
        runs, rows, cutoff, ideal, _ratio = paper_data.TABLE4[input_rows]
        result = simulate_uniform(input_rows, 5_000, 1_000, 9)
        assert result.runs == runs
        assert_close_rows(result.rows_spilled, rows)
        # The paper prints cutoffs with limited precision (e.g. 0.000064
        # for a true 0.0000635): allow 1%.
        assert result.final_cutoff == pytest.approx(cutoff, rel=1e-2)
        assert result.ideal_cutoff == pytest.approx(ideal, rel=1e-4)


class TestTable5:
    @pytest.mark.parametrize("input_rows", sorted(paper_data.TABLE5))
    def test_row(self, input_rows):
        runs, rows, cutoff, _ideal, _ratio = paper_data.TABLE5[input_rows]
        result = simulate_uniform(input_rows, 5_000, 1_000, 1)
        assert result.runs == pytest.approx(runs, abs=1)
        assert_close_rows(result.rows_spilled, rows, rel=0.01)
        # The paper reports cutoff 1 when no cutoff was ever established
        # (tiny inputs); effective_cutoff encodes that convention.
        assert result.effective_cutoff == pytest.approx(cutoff, rel=5e-3)


class TestHeadlineClaims:
    def test_section_321_spill_ratios(self):
        """'12x less than optimized, 28x less than traditional'."""
        ours = simulate_uniform(1_000_000, 5_000, 1_000, 9)
        traditional_rows = 1_000_000
        assert traditional_rows / ours.rows_spilled > 25

    def test_section_321_minimal_histogram_claim(self):
        """Median-only: 66 runs, <63,000 rows, still 15x less than
        traditional."""
        ours = simulate_uniform(1_000_000, 5_000, 1_000, 1)
        assert ours.runs == 66
        assert ours.rows_spilled < 63_000
        assert 1_000_000 / ours.rows_spilled > 15

    def test_table5_largest_input_footnote(self):
        """'for the largest input ... 1/8 % of the input rows'."""
        result = simulate_uniform(100_000_000, 5_000, 1_000, 1)
        fraction = result.rows_spilled / 100_000_000
        assert fraction == pytest.approx(1 / 800, rel=0.02)

    def test_nineteen_buckets_claim(self):
        """Section 3.2.1: with 19 buckets, 37 runs and <32,000 rows."""
        result = simulate_uniform(1_000_000, 5_000, 1_000, 19)
        assert result.runs == 37
        assert result.rows_spilled < 32_000

    def test_per_key_tracking_claim(self):
        """'tracking each key value ... 35 runs, <30,000 rows'."""
        result = simulate_uniform(1_000_000, 5_000, 1_000, 999)
        assert result.runs == 35
        assert result.rows_spilled < 30_000
