"""Benchmark: Table 2 — varying histogram size at full paper size."""

import pytest

from repro.core.analysis import simulate_uniform
from repro.experiments.paper_data import (
    TABLE2,
    paper_bucket_label_to_boundaries,
)


@pytest.mark.parametrize("label", [1, 10, 100])
def test_table2_row(benchmark, label):
    runs, rows, cutoff, _ratio = TABLE2[label]
    result = benchmark(
        simulate_uniform, 1_000_000, 5_000, 1_000,
        paper_bucket_label_to_boundaries(label))
    assert result.runs == runs
    assert result.rows_spilled == pytest.approx(rows, rel=0.002, abs=4)
    assert result.final_cutoff == pytest.approx(cutoff, rel=1e-3)


def test_table2_diminishing_returns(benchmark):
    """Going from 100 to 1,000 buckets is 'practically negligible'."""

    def sweep():
        return {label: simulate_uniform(
            1_000_000, 5_000, 1_000,
            paper_bucket_label_to_boundaries(label))
            for label in (10, 100, 1000)}

    results = benchmark(sweep)
    improvement_10_to_100 = (results[10].rows_spilled
                             - results[100].rows_spilled)
    improvement_100_to_1000 = (results[100].rows_spilled
                               - results[1000].rows_spilled)
    assert improvement_10_to_100 < 0.15 * results[10].rows_spilled
    assert improvement_100_to_1000 < improvement_10_to_100
