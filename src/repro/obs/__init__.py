"""Query observability: tracing spans, metrics, cutoff timelines, EXPLAIN ANALYZE.

The paper's whole argument is quantitative — rows eliminated before the
sort vs. at spill time, cutoff sharpening over the input stream, merge
fan-in — so this subsystem makes every phase of a query observable from
the outside:

* :mod:`repro.obs.trace` — a zero-dependency tracing core.  A
  :class:`Tracer` produces nested, monotonic-clock-timed
  :class:`Span` s; the :data:`NULL_TRACER` default makes untraced
  execution pay only a predictable no-op call per *phase* (never per
  row).  Finished traces export to the ``chrome://tracing`` JSON format.
* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  counters, gauges, and fixed-boundary histograms with a JSON-exportable
  ``snapshot()``; the query service aggregates per-query and fleet-wide
  metrics through it.
* :mod:`repro.obs.timeline` — the :class:`CutoffTimeline`: the live
  event stream of ``(rows_seen, cutoff_key)`` refinements that
  reproduces the paper's convergence plots from a real query.
* :mod:`repro.obs.explain` — ``EXPLAIN ANALYZE``: per-operator wall
  time, rows in/out, elimination sites, and the final cutoff, rendered
  as an indented plan tree.
"""

from repro.obs.explain import AnalyzedNode, AnalyzedPlan, PlanProbe
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.timeline import CutoffEvent, CutoffTimeline
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "AnalyzedNode",
    "AnalyzedPlan",
    "Counter",
    "CutoffEvent",
    "CutoffTimeline",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PlanProbe",
    "Span",
    "Tracer",
]
