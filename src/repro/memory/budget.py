"""Memory budget accounting.

The paper's setting (Section 2.1, "Resource Provisioning") is a busy shared
server where each operator gets only a small slice of RAM; the top-k
operator's behavior is therefore driven by an explicit budget rather than
whatever the host machine happens to have.  :class:`MemoryBudget` provides
that accounting: operators *charge* rows (or raw bytes) against the budget
and *release* them when rows are spilled, filtered, or emitted.

Budgets can be expressed in rows (the unit the paper's analysis uses — e.g.
"memory capacity is 1,000 rows") or in bytes (the unit the evaluation uses —
"1 GB, sufficient for 7 million rows").  A budget may carry both limits; an
allocation must satisfy every configured limit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, MemoryBudgetExceeded


@dataclass
class MemoryBudget:
    """Tracks row- and byte-level memory consumption against hard limits.

    Attributes:
        row_limit: Maximum number of rows resident at once (``None`` = no
            row limit).
        byte_limit: Maximum resident bytes (``None`` = no byte limit).
    """

    row_limit: int | None = None
    byte_limit: int | None = None

    def __post_init__(self) -> None:
        if self.row_limit is None and self.byte_limit is None:
            raise ConfigurationError(
                "a memory budget needs a row limit, a byte limit, or both"
            )
        if self.row_limit is not None and self.row_limit <= 0:
            raise ConfigurationError("row_limit must be positive")
        if self.byte_limit is not None and self.byte_limit <= 0:
            raise ConfigurationError("byte_limit must be positive")
        self.rows_used = 0
        self.bytes_used = 0
        self.peak_rows = 0
        self.peak_bytes = 0

    # -- queries ---------------------------------------------------------

    def fits(self, rows: int = 1, bytes_: int = 0) -> bool:
        """Would charging ``rows`` rows / ``bytes_`` bytes stay in budget?"""
        if self.row_limit is not None and self.rows_used + rows > self.row_limit:
            return False
        if (self.byte_limit is not None
                and self.bytes_used + bytes_ > self.byte_limit):
            return False
        return True

    @property
    def is_full(self) -> bool:
        """True when not even one more zero-byte row fits."""
        return not self.fits(rows=1, bytes_=0)

    def row_capacity(self, avg_row_bytes: int = 0) -> int:
        """Estimated total row capacity given an average row size.

        Used by planners to decide whether a requested ``k`` fits in memory
        before any row has been consumed.
        """
        capacities = []
        if self.row_limit is not None:
            capacities.append(self.row_limit)
        if self.byte_limit is not None and avg_row_bytes > 0:
            capacities.append(self.byte_limit // avg_row_bytes)
        if not capacities:
            raise ConfigurationError(
                "byte-limited budget needs avg_row_bytes to estimate capacity"
            )
        return min(capacities)

    # -- mutations -------------------------------------------------------

    def charge(self, rows: int = 1, bytes_: int = 0) -> None:
        """Account for ``rows`` rows / ``bytes_`` bytes entering memory.

        Raises:
            MemoryBudgetExceeded: if any configured limit would be exceeded.
        """
        if not self.fits(rows, bytes_):
            raise MemoryBudgetExceeded(
                f"allocation of {rows} rows / {bytes_} bytes exceeds budget "
                f"({self.describe()})"
            )
        self.rows_used += rows
        self.bytes_used += bytes_
        self.peak_rows = max(self.peak_rows, self.rows_used)
        self.peak_bytes = max(self.peak_bytes, self.bytes_used)

    def release(self, rows: int = 1, bytes_: int = 0) -> None:
        """Account for rows leaving memory (spilled, filtered, or emitted)."""
        if rows > self.rows_used or bytes_ > self.bytes_used:
            raise MemoryBudgetExceeded(
                f"release of {rows} rows / {bytes_} bytes exceeds usage "
                f"({self.rows_used} rows / {self.bytes_used} bytes)"
            )
        self.rows_used -= rows
        self.bytes_used -= bytes_

    def reset(self) -> None:
        """Drop all usage accounting (peaks are preserved)."""
        self.rows_used = 0
        self.bytes_used = 0

    def describe(self) -> str:
        """Human-readable summary of limits and usage."""
        parts = []
        if self.row_limit is not None:
            parts.append(f"rows {self.rows_used}/{self.row_limit}")
        if self.byte_limit is not None:
            parts.append(f"bytes {self.bytes_used}/{self.byte_limit}")
        return ", ".join(parts)


def row_budget(rows: int) -> MemoryBudget:
    """Budget limited to ``rows`` resident rows (the analysis-model unit)."""
    return MemoryBudget(row_limit=rows)


def byte_budget(bytes_: int) -> MemoryBudget:
    """Budget limited to ``bytes_`` resident bytes (the evaluation unit)."""
    return MemoryBudget(byte_limit=bytes_)
