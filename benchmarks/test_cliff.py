"""Benchmark: Section 5.2 — the performance cliff.

PostgreSQL-style behavior: the traditional algorithm's cost jumps an order
of magnitude the moment the requested output exceeds memory, while the
histogram algorithm degrades in proportion to the surviving input.
"""

import pytest

from conftest import MEMORY_ROWS, bench_workload
from repro.experiments.harness import run_algorithm


def _cost(algorithm, k):
    workload = bench_workload(input_rows=MEMORY_ROWS * 40, k=k)
    return run_algorithm(algorithm, workload).simulated_seconds


def test_cliff_traditional_jumps(benchmark):
    def run():
        below = _cost("traditional", int(MEMORY_ROWS * 0.9))
        above = _cost("traditional", int(MEMORY_ROWS * 1.1))
        return below, above

    below, above = benchmark(run)
    assert above / below > 8.0  # the order-of-magnitude cliff


def test_cliff_histogram_smooth(benchmark):
    def run():
        below = _cost("histogram", int(MEMORY_ROWS * 0.9))
        above = _cost("histogram", int(MEMORY_ROWS * 1.1))
        return below, above

    below, above = benchmark(run)
    # Crossing the boundary costs something, but nowhere near 10x.
    assert above / below < 5.0


def test_cliff_histogram_tracks_filtered_input(benchmark):
    """Cost grows with k smoothly, 'proportional to the filtered input'."""

    def run():
        return [_cost("histogram", k)
                for k in (MEMORY_ROWS * 2, MEMORY_ROWS * 4,
                          MEMORY_ROWS * 8)]

    costs = benchmark(run)
    assert costs == sorted(costs)
    # No adjacent pair explodes by an order of magnitude.
    for previous, current in zip(costs, costs[1:]):
        assert current / previous < 6.0
