"""Baseline: in-memory top-k with a priority queue (Section 2.3).

The standard algorithm for small ``k``: a max-heap tracks the k smallest
keys seen so far; its top is the cutoff key and almost the entire input is
eliminated on arrival.  It is "perfectly suitable for the easiest cases but
... neither scalable nor robust": the moment ``k + offset`` rows do not fit
in the operator's memory it simply cannot run — which this implementation
reports honestly by raising :class:`MemoryBudgetExceeded` unless the caller
explicitly provisions unbounded memory (as the Figure 6 cost comparison
does).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Iterator

from repro.core.cutoff import _ReverseKey
from repro.errors import ConfigurationError, MemoryBudgetExceeded
from repro.rows.batch import flatten
from repro.rows.sortspec import SortSpec
from repro.storage.stats import OperatorStats


class PriorityQueueTopK:
    """In-memory priority-queue top-k operator.

    Args:
        sort_key: A :class:`SortSpec` or key-extraction callable.
        k: Requested output size.
        memory_rows: Operator memory capacity in rows; ``None`` provisions
            memory for the entire output (the resource-wasteful strategy
            Section 2.1 argues against, quantified by Figure 6).
        offset: Rows to skip before producing output.
    """

    def __init__(
        self,
        sort_key: SortSpec | Callable[[tuple], Any],
        k: int,
        memory_rows: int | None = None,
        offset: int = 0,
        stats: OperatorStats | None = None,
    ):
        if k <= 0:
            raise ConfigurationError("k must be positive")
        if offset < 0:
            raise ConfigurationError("offset must be non-negative")
        self.sort_key = (sort_key.key if isinstance(sort_key, SortSpec)
                         else sort_key)
        self.k = k
        self.offset = offset
        needed = k + offset
        if memory_rows is not None and needed > memory_rows:
            raise MemoryBudgetExceeded(
                f"priority-queue top-k needs memory for {needed} rows but "
                f"only {memory_rows} fit; use HistogramTopK instead"
            )
        self.memory_rows = memory_rows if memory_rows is not None else needed
        self.stats = stats or OperatorStats()

    def execute_batches(self, batches) -> Iterator[tuple]:
        """Batch-pipeline adapter: flattens and runs row-at-a-time."""
        return self.execute(flatten(batches))

    def execute(self, rows: Iterable[tuple]) -> Iterator[tuple]:
        """Consume ``rows`` and yield the top k rows in sort order."""
        needed = self.k + self.offset
        sort_key = self.sort_key
        stats = self.stats
        heap: list[tuple[_ReverseKey, int, tuple]] = []
        seq = 0
        for row in rows:
            stats.rows_consumed += 1
            key = sort_key(row)
            if len(heap) < needed:
                seq += 1
                heapq.heappush(heap, (_ReverseKey(key), seq, row))
                stats.sort_comparisons += max(1, len(heap).bit_length())
                continue
            stats.cutoff_comparisons += 1
            if key < heap[0][0].key:
                seq += 1
                heapq.heapreplace(heap, (_ReverseKey(key), seq, row))
                stats.sort_comparisons += max(1, len(heap).bit_length())
            stats.rows_eliminated_on_arrival += 1
        survivors = sorted(((entry[0].key, entry[1], entry[2])
                            for entry in heap),
                           key=lambda item: (item[0], item[1]))
        for _key, _seq, row in survivors[self.offset:]:
            stats.rows_output += 1
            yield row

    @property
    def peak_memory_rows(self) -> int:
        """Rows of memory the operator actually needs resident."""
        return self.k + self.offset
