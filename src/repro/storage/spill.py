"""Spill files: the secondary-storage substrate.

Two interchangeable backends implement the same small interface:

* :class:`MemorySpillBackend` — keeps pages in process memory while fully
  accounting bytes and requests.  This is the default for experiments: it
  makes multi-million-row simulations fast and deterministic while the cost
  model still charges for every byte "written".
* :class:`DiskSpillBackend` — writes length-prefixed encoded pages to real
  temporary files through a pluggable page codec (see
  :mod:`repro.storage.codec`).  Used to validate that the abstraction is
  honest and for workloads that genuinely exceed process memory.

The disk backend's fast path is asynchronous on both sides:

* **Writes** go through a per-file background writer thread fed by a
  bounded two-slot queue (double buffering): run generation encodes the
  next page while the previous chunk is on disk.  Encoded pages are
  coalesced into ~128 KiB chunks before crossing the queue, so the
  per-handoff cost stays negligible even for small pages.  ``write()``
  releases the GIL, so the overlap is real.  ``seal()`` flushes the
  coalescing buffer, drains the queue, and re-raises any deferred I/O
  error on the producing thread.
* **Reads** (:meth:`SpillFile.pages` with ``prefetch > 0``) decode pages
  on a bounded read-ahead thread so the merge overlaps page decode with
  heap work.

Accounting stays deterministic: the *accounting* counters
(``bytes_written``/``bytes_read``/requests/rows) are charged on the
calling thread from the page's stated byte size, identically across
backends and codecs; the physical codec traffic lands in the separate
``bytes_encoded``/``bytes_decoded`` counters.  All traffic is recorded
into a shared :class:`~repro.storage.stats.IOStats` via the owning
:class:`SpillManager`.
"""

from __future__ import annotations

import os
import queue
import struct
import tempfile
import threading
import time
from typing import Callable, Iterator, Sequence

from repro.errors import SpillError
from repro.obs.trace import NULL_TRACER
from repro.storage.codec import (FORMAT_ZONEMAP, PickleCodec, decode_page,
                                 decode_page_skeleton, read_zone_map)
from repro.storage.pages import DEFAULT_PAGE_BYTES, Page, PageBuilder
from repro.storage.stats import IOStats

_LENGTH_HEADER = struct.Struct("<Q")

#: Bytes read to peek a page's zone-map header before committing to the
#: full body read.  Large enough for any realistic pair of boundary
#: keys; a header overflowing the window is simply not skipped.
_ZONE_PEEK_BYTES = 4096

#: Queue slots for the background writer: one chunk on disk, one encoded
#: and waiting — classic double buffering.
WRITER_QUEUE_DEPTH = 2

#: Encoded pages are batched into chunks of roughly this size before
#: being handed to the writer thread, so the per-handoff cost (queue and
#: scheduler) is amortized over many small pages.
WRITE_COALESCE_BYTES = 128 * 1024

#: Seconds a lifecycle operation (seal/delete/close) waits for an I/O
#: thread to finish before declaring it wedged.
_JOIN_TIMEOUT = 30.0


class _BackgroundPageWriter:
    """A bounded queue feeding one I/O thread (double-buffered writes).

    ``submit`` blocks only when the queue is full (the disk is behind) —
    that wait is counted as a writer stall.  I/O errors are captured on
    the writer thread and re-raised on the producing thread at the next
    ``submit`` or at :meth:`close` (the ``seal()`` drain).
    """

    _SENTINEL = object()

    def __init__(self, handle, stats: IOStats,
                 depth: int = WRITER_QUEUE_DEPTH):
        self._handle = handle
        self._stats = stats
        self._queue: queue.Queue = queue.Queue(maxsize=depth)
        self._error: BaseException | None = None
        self._thread = threading.Thread(target=self._drain,
                                        name="spill-writer", daemon=True)
        self._thread.start()

    def submit(self, blob: bytes) -> None:
        if self._error is not None:
            self._raise_deferred()
        try:
            self._queue.put_nowait(blob)
        except queue.Full:
            stats = self._stats
            stats.writer_stalls += 1
            started = time.perf_counter()
            self._queue.put(blob)
            stats.stall_seconds += time.perf_counter() - started

    def _drain(self) -> None:
        handle = self._handle
        stats = self._stats
        while True:
            blob = self._queue.get()
            if blob is self._SENTINEL:
                return
            if self._error is not None:
                continue  # keep draining so producers never deadlock
            try:
                started = time.perf_counter()
                handle.write(blob)
                stats.write_seconds += time.perf_counter() - started
            except BaseException as exc:
                self._error = exc

    def close(self, timeout: float = _JOIN_TIMEOUT,
              reraise: bool = True) -> None:
        """Drain outstanding pages, stop the thread, surface any error."""
        if self._thread.is_alive():
            self._queue.put(self._SENTINEL)
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise SpillError("spill writer thread failed to drain "
                                 f"within {timeout}s")
        if reraise and self._error is not None:
            self._raise_deferred()

    def _raise_deferred(self) -> None:
        error = self._error
        raise SpillError(
            f"background spill write failed: {error}") from error


class _ReadAhead:
    """Bounded background producer for sequential page scans.

    The source iterator runs on a private thread, keeping up to ``depth``
    decoded pages ready; the consumer pulls them off a queue.  Closing
    (early merge termination) stops the producer and joins it — no
    thread or file handle outlives the scan.
    """

    _DONE = object()

    def __init__(self, source: Iterator, depth: int, stats: IOStats):
        self._queue: queue.Queue = queue.Queue(maxsize=depth)
        self._stop = threading.Event()
        self._stats = stats
        self._first = True
        self._thread = threading.Thread(target=self._produce,
                                        args=(source,),
                                        name="spill-reader", daemon=True)
        self._thread.start()

    def _produce(self, source: Iterator) -> None:
        try:
            for item in source:
                if self._stop.is_set():
                    return
                if not self._put((None, item)):
                    return
        except BaseException as exc:
            self._put((exc, None))
            return
        self._put((None, self._DONE))

    def _put(self, entry) -> bool:
        while not self._stop.is_set():
            try:
                self._queue.put(entry, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    def __iter__(self) -> "_ReadAhead":
        return self

    def __next__(self):
        try:
            error, item = self._queue.get_nowait()
        except queue.Empty:
            stats = self._stats
            if not self._first:
                stats.read_stalls += 1
            started = time.perf_counter()
            error, item = self._queue.get()
            stats.stall_seconds += time.perf_counter() - started
        self._first = False
        if error is not None:
            self.close()
            raise error
        if item is self._DONE:
            raise StopIteration
        return item

    def close(self) -> None:
        self._stop.set()
        while True:  # unblock a producer waiting on a full queue
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        self._thread.join(_JOIN_TIMEOUT)


class SpillFile:
    """A write-once, sequentially-read file of pages.

    Lifecycle: ``append_page`` while writing, then ``seal``, then any number
    of sequential ``pages()`` scans, then ``delete``.
    """

    #: Whether ``pages(prefetch=...)`` may spawn a read-ahead thread —
    #: only worthwhile on backends with real I/O.
    supports_prefetch = False

    #: Whether this file's pages can be read as key-only skeletons
    #: (key/payload-split wire format; see :mod:`repro.storage.codec`).
    supports_lazy = False

    #: When True, sequential scans decode only the key section of split
    #: pages and deliver ``(file_id, page_index, slot)`` skeleton rows;
    #: the late-materialization stitch resolves winners via
    #: :meth:`read_page`.  Set per file by the consumer — only on
    #: original run files, never on intermediate merge output (whose
    #: rows are already skeleton references).
    lazy_reads = False

    #: Tracer for skip events; :class:`SpillManager` installs its own.
    tracer = NULL_TRACER

    def __init__(self, file_id: int, stats: IOStats):
        self.file_id = file_id
        self._stats = stats
        self._sealed = False
        self.page_count = 0
        self.row_count = 0
        self.byte_size = 0
        #: Row count of each page, in order — lets readers skip whole
        #: pages (and know exactly how many rows they skipped) without
        #: touching storage.
        self.page_row_counts: list[int] = []

    # -- write side ------------------------------------------------------

    def append_page(self, page: Page) -> None:
        """Write one page; charges a write request and its bytes."""
        if self._sealed:
            raise SpillError("cannot append to a sealed spill file")
        self._store_page(page)
        self.page_count += 1
        self.row_count += len(page)
        self.byte_size += page.byte_size
        self.page_row_counts.append(len(page))
        self._stats.write_requests += 1
        self._stats.bytes_written += page.byte_size
        self._stats.rows_spilled += len(page)

    def seal(self) -> None:
        """Finish writing; the file becomes readable.

        On the disk backend this drains the background writer queue and
        re-raises any I/O error deferred from the writer thread.
        """
        self._sealed = True

    # -- read side -------------------------------------------------------

    def pages(self, start_page: int = 0, prefetch: int = 0,
              transform: Callable[[Page], Page] | None = None,
              cutoff: bytes | None = None) -> Iterator[Page]:
        """Sequentially scan pages from ``start_page``; charges read
        requests and bytes only for the pages actually delivered.

        ``prefetch > 0`` overlaps page load/decode with consumer work on
        backends with real I/O (a bounded read-ahead thread; ignored
        elsewhere).  ``transform`` is applied to each page before
        delivery — on the read-ahead thread when one is active, so
        per-page work such as building the merge key cache overlaps with
        downstream heap work as well.

        ``cutoff`` (an encoded binary sort key) enables zone-map
        pruning: the scan ends at the first page whose min key exceeds
        it — pages within a run are key-ordered, so every later page
        exceeds it too.  The test runs *before* the page body is decoded
        (and, under read-ahead, on the prefetch thread, so skipped pages
        are never pulled off disk).  Skipping is sound for a top-k merge
        because such a page cannot contribute a winner.
        """
        if not self._sealed:
            raise SpillError("spill file must be sealed before reading")
        if cutoff is not None and not isinstance(cutoff, bytes):
            cutoff = None  # zone maps exist only for binary keys
        source: Iterator[Page] = self._load_pages(start_page, cutoff)
        if transform is not None:
            source = map(transform, source)
        reader = None
        if prefetch > 0 and self.supports_prefetch:
            reader = _ReadAhead(source, prefetch, self._stats)
            source = reader
        try:
            for page in source:
                self._stats.read_requests += 1
                self._stats.bytes_read += page.byte_size
                self._stats.rows_read += len(page)
                yield page
        finally:
            if reader is not None:
                reader.close()

    def rows(self, start_page: int = 0,
             cutoff: bytes | None = None) -> Iterator[tuple]:
        """Sequentially scan rows, optionally starting at a later page."""
        for page in self.pages(start_page, cutoff=cutoff):
            yield from page.rows

    def read_page(self, index: int) -> Page:
        """Random-access read of one fully-decoded page.

        The late-materialization stitch uses this to resolve skeleton
        references back to real rows; charges one random read.
        """
        if not self._sealed:
            raise SpillError("spill file must be sealed before reading")
        page = self._fetch_page(index)
        self._stats.random_reads += 1
        return page

    def delete(self) -> None:
        """Release the file's storage (idempotent)."""
        self._discard()

    # -- backend hooks ---------------------------------------------------

    def _store_page(self, page: Page) -> None:
        raise NotImplementedError

    def _load_pages(self, start_page: int = 0,
                    cutoff: bytes | None = None) -> Iterator[Page]:
        raise NotImplementedError

    def _fetch_page(self, index: int) -> Page:
        raise NotImplementedError

    def _discard(self) -> None:
        raise NotImplementedError

    def _charge_skip(self, pages: int, skipped_bytes: int) -> None:
        """Record a zone-map skip (the tail of a scan never decoded)."""
        stats = self._stats
        stats.pages_skipped_zone_map += pages
        stats.bytes_skipped_decode += skipped_bytes
        if self.tracer.enabled:
            self.tracer.event("spill.zone_map.skip", file_id=self.file_id,
                              pages=pages, bytes=skipped_bytes)


class _MemorySpillFile(SpillFile):
    """Spill file held in process memory (byte-accounted)."""

    def __init__(self, file_id: int, stats: IOStats):
        super().__init__(file_id, stats)
        self._pages: list[Page] = []

    def _store_page(self, page: Page) -> None:
        self._pages.append(page)

    def _load_pages(self, start_page: int = 0,
                    cutoff: bytes | None = None) -> Iterator[Page]:
        pages = self._pages
        for index in range(start_page, len(pages)):
            page = pages[index]
            if cutoff is not None:
                # Mirror the disk backend's zone-map rule (binary keys
                # only) so accounting stays parallel across backends.
                keys = page.keys
                if (keys is not None and len(keys) == len(page.rows)
                        and keys and type(keys[0]) is bytes
                        and keys[0] > cutoff):
                    tail = pages[index:]
                    self._charge_skip(
                        len(tail), sum(p.byte_size for p in tail))
                    return
            yield page

    def _fetch_page(self, index: int) -> Page:
        if not 0 <= index < len(self._pages):
            raise SpillError(
                f"page {index} out of range for spill file "
                f"{self.file_id} ({self.page_count} pages)")
        return self._pages[index]

    def _discard(self) -> None:
        self._pages = []


class _DiskSpillFile(SpillFile):
    """Spill file backed by a real temporary file of codec-encoded pages."""

    supports_prefetch = True

    def __init__(self, file_id: int, stats: IOStats, directory: str,
                 codec=None, background: bool = True):
        super().__init__(file_id, stats)
        self._codec = codec if codec is not None else PickleCodec()
        fd, self._path = tempfile.mkstemp(
            prefix=f"run{file_id:06d}_", suffix=".spill", dir=directory)
        self._handle = os.fdopen(fd, "wb")
        self._page_offsets: list[int] = []
        self._bytes_on_disk = 0
        self._writer = (_BackgroundPageWriter(self._handle, stats)
                        if background else None)
        self._pending: list[bytes] = []
        self._pending_bytes = 0
        self._deleted = False

    def _store_page(self, page: Page) -> None:
        stats = self._stats
        started = time.perf_counter()
        payload = self._codec.encode(page)
        stats.encode_seconds += time.perf_counter() - started
        stats.bytes_encoded += len(payload)
        blob = _LENGTH_HEADER.pack(len(payload)) + payload
        self._page_offsets.append(self._bytes_on_disk)
        self._bytes_on_disk += len(blob)
        if self._writer is not None:
            self._pending.append(blob)
            self._pending_bytes += len(blob)
            if self._pending_bytes >= WRITE_COALESCE_BYTES:
                self._flush_pending()
        else:
            started = time.perf_counter()
            self._handle.write(blob)
            stats.write_seconds += time.perf_counter() - started

    def _flush_pending(self) -> None:
        if not self._pending:
            return
        chunk = (self._pending[0] if len(self._pending) == 1
                 else b"".join(self._pending))
        self._pending.clear()
        self._pending_bytes = 0
        self._writer.submit(chunk)

    def seal(self) -> None:
        if not self._sealed:
            try:
                if self._writer is not None:
                    self._flush_pending()
                    self._writer.close()
            finally:
                self._handle.close()
        super().seal()

    @property
    def supports_lazy(self) -> bool:
        return bool(getattr(self._codec, "late_materialization", False))

    def _load_pages(self, start_page: int = 0,
                    cutoff: bytes | None = None) -> Iterator[Page]:
        stats = self._stats
        lazy = self.lazy_reads
        index = start_page
        with open(self._path, "rb") as handle:
            if start_page:
                if start_page >= len(self._page_offsets):
                    return
                handle.seek(self._page_offsets[start_page])
            while True:
                header = handle.read(_LENGTH_HEADER.size)
                if not header:
                    return
                if len(header) != _LENGTH_HEADER.size:
                    raise SpillError(f"truncated page header in {self._path}")
                (length,) = _LENGTH_HEADER.unpack(header)
                if cutoff is not None:
                    # Peek only the zone-map header before committing to
                    # the body read: the first skipped page costs at most
                    # the peek window, every later page costs nothing —
                    # they are never read off disk at all.
                    peek = handle.read(min(length, _ZONE_PEEK_BYTES))
                    if peek[:1] == bytes([FORMAT_ZONEMAP]):
                        try:
                            zone_map = read_zone_map(peek)
                        except SpillError:
                            # Header larger than the peek window (or
                            # corrupt — the full decode below reports it
                            # with page context).
                            zone_map = None
                        if (zone_map is not None
                                and zone_map.min_key > cutoff):
                            pages = self.page_count - index
                            span = (self._bytes_on_disk
                                    - self._page_offsets[index])
                            self._charge_skip(
                                pages,
                                span - _LENGTH_HEADER.size * pages)
                            return
                    payload = peek
                    if len(peek) < length:
                        payload = peek + handle.read(length - len(peek))
                else:
                    payload = handle.read(length)
                if len(payload) != length:
                    raise SpillError(f"truncated page body in {self._path}")
                yield self._decode_payload(payload, index, lazy)
                index += 1

    def _decode_payload(self, payload: bytes, index: int,
                        lazy: bool) -> Page:
        stats = self._stats
        started = time.perf_counter()
        try:
            if lazy:
                page, undecoded = decode_page_skeleton(
                    payload, self.file_id, index)
            else:
                page, undecoded = decode_page(payload), 0
        except SpillError as exc:
            raise SpillError(
                f"{exc} (page {index} at byte offset "
                f"{self._page_offsets[index]} of {self._path})") from exc
        stats.decode_seconds += time.perf_counter() - started
        stats.bytes_decoded += len(payload) - undecoded
        if undecoded:
            stats.bytes_skipped_decode += undecoded
        return page

    def _fetch_page(self, index: int) -> Page:
        if not 0 <= index < len(self._page_offsets):
            raise SpillError(
                f"page {index} out of range for spill file "
                f"{self.file_id} ({self.page_count} pages)")
        with open(self._path, "rb") as handle:
            handle.seek(self._page_offsets[index])
            header = handle.read(_LENGTH_HEADER.size)
            if len(header) != _LENGTH_HEADER.size:
                raise SpillError(f"truncated page header in {self._path}")
            (length,) = _LENGTH_HEADER.unpack(header)
            payload = handle.read(length)
            if len(payload) != length:
                raise SpillError(f"truncated page body in {self._path}")
        return self._decode_payload(payload, index, lazy=False)

    def _discard(self) -> None:
        if self._deleted:
            return
        self._deleted = True
        if self._writer is not None:
            self._writer.close(timeout=_JOIN_TIMEOUT, reraise=False)
        if not self._handle.closed:
            self._handle.close()
        if os.path.exists(self._path):
            os.unlink(self._path)


class MemorySpillBackend:
    """Creates in-memory spill files."""

    def create_file(self, file_id: int, stats: IOStats) -> SpillFile:
        return _MemorySpillFile(file_id, stats)

    def close(self) -> None:
        """Nothing to release for the in-memory backend."""


class DiskSpillBackend:
    """Creates real temporary spill files under one directory.

    Args:
        directory: Spill directory; a private temporary one is created
            (and later removed) when omitted.
        codec: Page codec (:class:`~repro.storage.codec.TypedPageCodec`
            for schema-typed fast encoding, or the default
            :class:`~repro.storage.codec.PickleCodec`).
        background_writes: Write pages on a per-file background thread
            fed by a bounded double-buffer queue (the default); ``False``
            restores fully synchronous writes (the ablation baseline).

    The backend tracks every file it creates so that :meth:`close` can
    remove them all — including files that were never sealed (a query
    failed mid-write) or never deleted (a query failed before its merge
    consumed them).  ``close()`` is idempotent, joins any writer threads,
    and the backend is a context manager, so error paths can simply
    ``with`` it.
    """

    def __init__(self, directory: str | None = None, codec=None,
                 background_writes: bool = True):
        self._own_directory = directory is None
        self._directory = directory or tempfile.mkdtemp(prefix="repro_spill_")
        self._codec = codec
        self._background = background_writes
        self._files: list[_DiskSpillFile] = []
        self._closed = False

    @property
    def supports_late_materialization(self) -> bool:
        """True when the configured codec writes key/payload-split pages
        (so the planner may choose a lazy-materialization plan)."""
        return bool(getattr(self._codec, "late_materialization", False))

    def create_file(self, file_id: int, stats: IOStats) -> SpillFile:
        if self._closed:
            raise SpillError("spill backend is closed")
        spill_file = _DiskSpillFile(file_id, stats, self._directory,
                                    codec=self._codec,
                                    background=self._background)
        self._files.append(spill_file)
        return spill_file

    def close(self) -> None:
        """Delete every created file (sealed or not), then the directory
        if this backend created it.  Safe to call more than once."""
        if self._closed:
            return
        self._closed = True
        for spill_file in self._files:
            spill_file.delete()
        self._files.clear()
        if self._own_directory and os.path.isdir(self._directory):
            for name in os.listdir(self._directory):
                os.unlink(os.path.join(self._directory, name))
            os.rmdir(self._directory)

    def __enter__(self) -> "DiskSpillBackend":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class SpillManager:
    """Factory and accounting hub for spill files.

    Args:
        backend: Storage backend; defaults to the in-memory one.
        stats: Shared counters; a fresh record is created when omitted.
        page_bytes: Page capacity handed to writers.
        row_size: Row byte estimator handed to writers.
        tracer: Optional :class:`repro.obs.trace.Tracer`; when enabled,
            spill-file lifecycle (create/delete) is emitted as trace
            events — one per *file*, never per page or row.
    """

    def __init__(
        self,
        backend: MemorySpillBackend | DiskSpillBackend | None = None,
        stats: IOStats | None = None,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        row_size: Callable[[Sequence], int] | None = None,
        tracer=None,
    ):
        self.backend = backend or MemorySpillBackend()
        self.stats = stats if stats is not None else IOStats()
        self.page_bytes = page_bytes
        self.row_size = row_size or (lambda row: 16 + 8 * len(row))
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._next_file_id = 0
        self._open_files: list[SpillFile] = []
        self._closed = False

    def create_file(self) -> SpillFile:
        """Create a new spill file registered with this manager."""
        spill_file = self.backend.create_file(self._next_file_id, self.stats)
        spill_file.tracer = self.tracer
        self._next_file_id += 1
        self._open_files.append(spill_file)
        if self.tracer.enabled:
            self.tracer.event("spill.file_created",
                              file_id=spill_file.file_id)
        return spill_file

    def new_page_builder(self) -> PageBuilder:
        """A page builder configured with this manager's page geometry."""
        return PageBuilder(page_bytes=self.page_bytes, row_size=self.row_size)

    def delete_file(self, spill_file: SpillFile) -> None:
        """Delete a file and record the run deletion."""
        spill_file.delete()
        if spill_file in self._open_files:
            self._open_files.remove(spill_file)
        self.stats.runs_deleted += 1
        if self.tracer.enabled:
            self.tracer.event("spill.file_deleted",
                              file_id=spill_file.file_id,
                              rows=spill_file.row_count)

    def close(self) -> None:
        """Delete all files and release backend resources (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for spill_file in list(self._open_files):
            spill_file.delete()
        self._open_files.clear()
        self.backend.close()

    def __enter__(self) -> "SpillManager":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
