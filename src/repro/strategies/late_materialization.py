"""Alternative strategy: late materialization (Section 2.1).

Instead of pushing full rows through the sort, keep only ``(key, row_id)``
pairs in the top-k operator — small enough that a much larger output fits
in memory — and materialize the final result by fetching the winning rows
from a row store.  The catch the paper calls out: each fetch is a *random
read*, and in a disaggregated-storage environment a random read costs a
network round trip plus a storage-service invocation plus a seek on a
shared disk, which makes this strategy a bad trade exactly where F1 runs.

This module makes that argument quantitative.  :class:`SimulatedRowStore`
charges one random read per fetched row (batched fetches of adjacent rows
coalesce when they land in the same page); :class:`LateMaterializationTopK`
runs the key/row-id top-k and then pays the materialization bill.  Under
:data:`~repro.storage.costmodel.DEFAULT_COST_MODEL` the strategy loses to
histogram filtering; under a cost model with cheap random reads (local
NVMe) it can win — both outcomes are exercised in the strategy benchmarks.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.core.topk import HistogramTopK
from repro.errors import ConfigurationError
from repro.rows.sortspec import SortSpec
from repro.storage.spill import SpillManager
from repro.storage.stats import IOStats, OperatorStats


class SimulatedRowStore:
    """A row store reachable only through (expensive) random reads.

    Rows are stored by position.  ``fetch`` charges one random read per
    page touched; rows co-resident in one page coalesce.

    Args:
        rows_per_page: How many rows share one storage page.
        stats: I/O counters to charge the reads against.
    """

    def __init__(self, rows: list[tuple], rows_per_page: int = 64,
                 stats: IOStats | None = None,
                 row_bytes: int = 143):
        if rows_per_page <= 0:
            raise ConfigurationError("rows_per_page must be positive")
        self._rows = rows
        self._rows_per_page = rows_per_page
        self._row_bytes = row_bytes
        self.stats = stats if stats is not None else IOStats()

    def __len__(self) -> int:
        return len(self._rows)

    def fetch(self, row_ids: Iterable[int]) -> Iterator[tuple]:
        """Yield rows for ``row_ids`` (in the given order), charging I/O."""
        touched_pages: set[int] = set()
        for row_id in row_ids:
            page = row_id // self._rows_per_page
            if page not in touched_pages:
                touched_pages.add(page)
                self.stats.random_reads += 1
                self.stats.bytes_read += (self._rows_per_page
                                          * self._row_bytes)
            self.stats.rows_read += 1
            yield self._rows[row_id]


class LateMaterializationTopK:
    """Top-k over ``(key, row_id)`` pairs + a final materialization join.

    Args:
        sort_key: :class:`SortSpec` or key extractor over *full* rows.
        k: Requested output size.
        memory_rows: Memory budget in (narrow key/row-id) rows.  Because
            the narrow pairs are ~10x smaller than payload rows, callers
            modeling a fixed byte budget should pass a proportionally
            larger row count — see ``memory_amplification``.
        memory_amplification: Factor by which the narrow representation
            stretches the same byte budget (default 8: a 16-byte pair vs
            a ~143-byte payload row).
    """

    def __init__(
        self,
        sort_key: SortSpec | Callable[[tuple], Any],
        k: int,
        memory_rows: int,
        spill_manager: SpillManager | None = None,
        memory_amplification: int = 8,
        rows_per_store_page: int = 64,
        stats: OperatorStats | None = None,
    ):
        if memory_amplification <= 0:
            raise ConfigurationError(
                "memory_amplification must be positive")
        self.full_row_key = (sort_key.key if isinstance(sort_key, SortSpec)
                             else sort_key)
        self.k = k
        self.memory_rows = memory_rows * memory_amplification
        self.spill_manager = spill_manager or SpillManager(
            row_size=lambda _pair: 16)
        self.stats = stats or OperatorStats()
        self.stats.io = self.spill_manager.stats
        self.rows_per_store_page = rows_per_store_page
        self.store: SimulatedRowStore | None = None

    def execute(self, rows: Iterable[tuple]) -> Iterator[tuple]:
        """Materialize ``rows`` into the store, top-k the ids, fetch back.

        The input materialization models the strategy's assumption that
        the base table already sits in (or is written to) the row store;
        only the *random-read* fetches are charged here, making the
        comparison generous toward late materialization.
        """
        materialized = list(rows)
        self.stats.rows_consumed += len(materialized)
        self.store = SimulatedRowStore(
            materialized,
            rows_per_page=self.rows_per_store_page,
            stats=self.spill_manager.stats)

        full_key = self.full_row_key
        pairs = ((full_key(row), row_id)
                 for row_id, row in enumerate(materialized))
        inner = HistogramTopK(
            lambda pair: pair[0],
            k=self.k,
            memory_rows=self.memory_rows,
            spill_manager=self.spill_manager,
        )
        winning_ids = [pair[1] for pair in inner.execute(pairs)]
        self.stats.sort_comparisons += inner.stats.sort_comparisons
        self.stats.cutoff_comparisons += inner.stats.cutoff_comparisons
        for row in self.store.fetch(winning_ids):
            self.stats.rows_output += 1
            yield row

    @property
    def random_reads(self) -> int:
        """Random page reads paid by the materialization join."""
        return self.spill_manager.stats.random_reads
