"""Tests for grouped top-k (Section 4.3)."""

import collections
import random

import pytest

from repro.errors import ConfigurationError
from repro.extensions.grouped import GroupedTopK

GROUP = lambda row: row[0]  # noqa: E731
VALUE = lambda row: row[1]  # noqa: E731


def grouped_input(groups, rows, seed=0):
    rng = random.Random(seed)
    return [(rng.randrange(groups), rng.random()) for _ in range(rows)]


def expected_per_group(rows, k):
    by_group = collections.defaultdict(list)
    for row in rows:
        by_group[row[0]].append(row)
    return {group: sorted(members, key=VALUE)[:k]
            for group, members in by_group.items()}


class TestGroupedTopK:
    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            GroupedTopK(GROUP, VALUE, k=0, memory_rows=10)
        with pytest.raises(ConfigurationError):
            GroupedTopK(GROUP, VALUE, k=5, memory_rows=0)

    def test_per_group_topk_correct(self):
        rows = grouped_input(6, 30_000)
        operator = GroupedTopK(GROUP, VALUE, k=400, memory_rows=800)
        got = collections.defaultdict(list)
        for group, row in operator.execute(iter(rows)):
            got[group].append(row)
        expected = expected_per_group(rows, 400)
        assert dict(got) == expected

    def test_output_grouped_and_sorted_within_group(self):
        rows = grouped_input(4, 8_000)
        operator = GroupedTopK(GROUP, VALUE, k=100, memory_rows=500)
        output = list(operator.execute(iter(rows)))
        groups_seen = [group for group, _row in output]
        # Group-contiguous output.
        boundaries = [g for i, g in enumerate(groups_seen)
                      if i == 0 or groups_seen[i - 1] != g]
        assert len(boundaries) == len(set(groups_seen))
        # Sorted within each group.
        for group in set(groups_seen):
            keys = [row[1] for g, row in output if g == group]
            assert keys == sorted(keys)

    def test_filters_reduce_spill(self):
        rows = grouped_input(5, 30_000)
        filtered = GroupedTopK(GROUP, VALUE, k=100, memory_rows=500)
        list(filtered.execute(iter(rows)))
        everything = GroupedTopK(GROUP, VALUE, k=10_000, memory_rows=500)
        list(everything.execute(iter(rows)))
        assert (filtered.stats.io.rows_spilled
                < everything.stats.io.rows_spilled)

    def test_per_group_cutoffs_tracked_separately(self):
        rng = random.Random(7)
        # Group "hot" has tiny values, group "cold" large ones: the
        # cutoffs must differ.
        rows = []
        for _ in range(20_000):
            if rng.random() < 0.5:
                rows.append(("hot", rng.random() * 0.01))
            else:
                rows.append(("cold", 1.0 + rng.random()))
        operator = GroupedTopK(GROUP, VALUE, k=200, memory_rows=400)
        list(operator.execute(iter(rows)))
        hot_cutoff = operator.cutoff_key("hot")
        cold_cutoff = operator.cutoff_key("cold")
        assert hot_cutoff is not None and cold_cutoff is not None
        assert hot_cutoff < 0.02
        assert cold_cutoff > 1.0

    def test_small_groups_never_establish_cutoffs(self):
        rows = [(1, 0.5), (2, 0.25), (1, 0.75)]
        operator = GroupedTopK(GROUP, VALUE, k=100, memory_rows=2)
        output = list(operator.execute(iter(rows)))
        assert len(output) == 3
        assert operator.cutoff_key(1) is None

    def test_string_groups(self):
        rng = random.Random(9)
        rows = [(rng.choice(["us", "de", "jp"]), rng.random())
                for _ in range(5_000)]
        operator = GroupedTopK(GROUP, VALUE, k=50, memory_rows=300)
        got = collections.defaultdict(list)
        for group, row in operator.execute(iter(rows)):
            got[group].append(row)
        assert dict(got) == expected_per_group(rows, 50)

    def test_mixed_type_groups_do_not_crash(self):
        rows = [(1, 0.5), ("a", 0.25), (2, 0.1), ("b", 0.9)] * 50
        operator = GroupedTopK(GROUP, VALUE, k=10, memory_rows=20)
        output = list(operator.execute(iter(rows)))
        assert len(output) == 4 * 10

    def test_empty_input(self):
        operator = GroupedTopK(GROUP, VALUE, k=10, memory_rows=20)
        assert list(operator.execute(iter([]))) == []
