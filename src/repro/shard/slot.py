"""The shared-memory global-cutoff slot: a seqlock over a binary sort key.

The paper's filter works because every arriving row is tested against the
*sharpest known* cutoff.  Run sharded, each worker's histogram only sees
its own partition — so the sharpest cutoff any shard has established is
published here, and every shard (and the coordinator's arrival-side
pre-filter) reads it for free.  The slot holds the cutoff as an
order-preserving binary key (:mod:`repro.sorting.keycodec`), so
"tighter" is a plain ``bytes`` comparison regardless of key type or sort
direction, and the publish rule is monotone: a key is written only if it
is strictly below the current one.

Layout (little-endian, one cache-line-ish segment)::

    [ 0: 8)  sequence      — even: stable; odd: a writer is mid-update
    [ 8:16)  publications  — total successful publishes (global sequence)
    [16:20)  key length
    [20:  )  key bytes     — up to KEY_CAPACITY

Writers serialize on a ``multiprocessing.Lock`` (publishes are rare —
one per cutoff refinement per shard — so contention is negligible);
readers are lock-free: read the sequence, copy the payload, re-read the
sequence, retry on change or on an odd value.  This is the classic
seqlock, which needs no atomic read-modify-write — exactly what plain
shared memory offers from Python.
"""

from __future__ import annotations

import struct
import time
from multiprocessing import shared_memory

from repro.errors import ConfigurationError
from repro.shard.chunks import ShmRegistry, untrack
from repro.sorting.keycodec import decode_float_key, encode_float_key

_HEADER = struct.Struct("<QQI")

#: Maximum published key size.  Float keys need 8 bytes; the headroom
#: admits future composite keys without a layout change.
KEY_CAPACITY = 64

SLOT_SIZE = _HEADER.size + KEY_CAPACITY

#: Seqlock read attempts before falling back to a locked read.
_READ_RETRIES = 64


class SharedCutoffSlot:
    """One cross-process cutoff cell (create in the coordinator, attach
    in workers; the writer lock travels as a ``Process`` argument)."""

    def __init__(self, shm: shared_memory.SharedMemory, lock):
        self._shm = shm
        self._lock = lock

    @classmethod
    def create(cls, registry: ShmRegistry, lock) -> "SharedCutoffSlot":
        name = registry.new_name()
        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=SLOT_SIZE)
        registry.register(name)
        untrack(shm)  # the registry owns cleanup
        _HEADER.pack_into(shm.buf, 0, 0, 0, 0)
        return cls(shm, lock)

    @classmethod
    def attach(cls, name: str, lock) -> "SharedCutoffSlot":
        shm = shared_memory.SharedMemory(name=name)
        untrack(shm)  # readers never unlink
        return cls(shm, lock)

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        self._shm.close()

    # -- publish / read --------------------------------------------------

    def publish(self, key: bytes) -> int | None:
        """Install ``key`` if strictly tighter than the current cutoff.

        Returns the global publication sequence number on success, or
        ``None`` when the slot already holds an equal-or-tighter key —
        the monotonicity that makes adopting a remote cutoff always
        safe.
        """
        if len(key) > KEY_CAPACITY:
            raise ConfigurationError(
                f"cutoff key of {len(key)} bytes exceeds the slot "
                f"capacity of {KEY_CAPACITY}")
        buf = self._shm.buf
        body = _HEADER.size
        with self._lock:
            seq, publications, key_len = _HEADER.unpack_from(buf, 0)
            if key_len and bytes(buf[body:body + key_len]) <= key:
                return None
            # Odd sequence: readers discard anything they copy now.
            _HEADER.pack_into(buf, 0, seq + 1, publications, key_len)
            buf[body:body + len(key)] = key
            _HEADER.pack_into(buf, 0, seq + 2, publications + 1, len(key))
            return publications + 1

    def read(self) -> tuple[bytes | None, int]:
        """Lock-free consistent read → ``(key or None, publications)``."""
        buf = self._shm.buf
        body = _HEADER.size
        for _ in range(_READ_RETRIES):
            first, publications, key_len = _HEADER.unpack_from(buf, 0)
            if first & 1:  # writer mid-update
                time.sleep(0)
                continue
            key = bytes(buf[body:body + key_len]) if key_len else None
            if _HEADER.unpack_from(buf, 0)[0] == first:
                return key, publications
        # Writer storm (practically unreachable): one locked read is
        # always consistent.
        with self._lock:  # pragma: no cover - contention fallback
            _, publications, key_len = _HEADER.unpack_from(buf, 0)
            key = bytes(buf[body:body + key_len]) if key_len else None
            return key, publications

    # -- float convenience (the vectorized engine's key space) -----------

    def publish_float(self, value: float) -> int | None:
        """Publish a *normalized* float cutoff (NaN is never published:
        a NaN bound asserts nothing and would poison comparisons)."""
        if value != value:
            return None
        return self.publish(encode_float_key(value))

    def read_float(self) -> tuple[float | None, int]:
        key, publications = self.read()
        if key is None:
            return None, publications
        return decode_float_key(key), publications
