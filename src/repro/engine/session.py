"""Database session: table registry + SQL execution.

The user-facing entry point of the mini engine::

    db = Database(memory_rows=7_000)
    db.register_table("LINEITEM", LINEITEM_SCHEMA, rows)
    result = db.sql("SELECT * FROM LINEITEM ORDER BY L_ORDERKEY LIMIT 30000")
    for row in result:
        ...
    print(result.stats.io.rows_spilled)
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.engine.operators import Operator, Table, TopK, VectorizedTopK
from repro.engine.planner import Planner
from repro.engine.sql import ParsedQuery, cutoff_scope, parse
from repro.errors import PlanError, StaleCutoffSeed
from repro.obs.explain import AnalyzedPlan, PlanProbe
from repro.obs.trace import NULL_TRACER, Tracer
from repro.rows.schema import Schema
from repro.rows.sortspec import key_value_decoder
from repro.stats import StatsCatalog, TableStats
from repro.storage.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.storage.stats import OperatorStats

logger = logging.getLogger(__name__)


@dataclass
class QueryResult:
    """Materialized query result plus execution metadata."""

    rows: list[tuple]
    schema: Schema
    plan: Operator
    query: ParsedQuery
    stats: OperatorStats = field(default_factory=OperatorStats)
    #: Key of the last produced top-k row (overall rank ``k + offset``)
    #: when the plan was a plain top-k that produced its full output;
    #: ``None`` otherwise.  This is the tightest valid ``cutoff_seed``
    #: for a repeat of the query over the same table version.
    final_cutoff: Any = None
    #: Per-operator measurements (``EXPLAIN ANALYZE``); populated only
    #: when the query ran with ``explain_analyze=True``.
    analysis: AnalyzedPlan | None = None
    #: The tracer that observed this execution, when one was attached.
    tracer: Any = None
    #: The top-k operator's cutoff sharpening timeline (traced runs only).
    cutoff_timeline: Any = None

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def explain(self) -> str:
        """The physical plan as indented text."""
        return self.plan.explain()

    def explain_analyze(self) -> str:
        """The measured plan tree (``EXPLAIN ANALYZE`` text).

        Only available when the query was executed with
        ``explain_analyze=True``.
        """
        if self.analysis is None:
            raise PlanError(
                "no analysis recorded; execute the query with "
                "sql(..., explain_analyze=True)")
        return self.analysis.render()

    def simulated_seconds(self,
                          cost_model: CostModel = DEFAULT_COST_MODEL) -> float:
        """Simulated execution time under a storage cost model."""
        return cost_model.total_seconds(self.stats)


class Database:
    """An in-process database over registered tables.

    Args:
        memory_rows: Memory budget (rows) for each sorting operator.
        algorithm: Default top-k algorithm (``"histogram"``).
        algorithm_options: Extra options forwarded to the top-k algorithm.
        shards: Default worker-process count for sharded top-k execution
            (``1`` = single-process; ``"auto"`` lets the cost model pick;
            see :mod:`repro.shard`).
        shard_options: Extra options for the shard executor
            (``partition=``, ``exchange=``, ``spill=``, ...).
        stats_catalog: Inject a pre-built
            :class:`~repro.stats.StatsCatalog`; ``None`` builds one
            (persisting under ``stats_path`` when given).  The catalog
            feeds the cost-based planner and is refilled by
            :meth:`analyze` scans, run-generation histogram harvesting,
            and post-execution cardinality feedback.
        stats_path: Directory for the default catalog's per-table JSON
            files; statistics then survive process restarts.
        force_path: Pin every plain top-k plan to one physical path
            (``"row"``, ``"batch"``, ``"vectorized"``, ``"sharded"``)
            instead of costing — the benchmark harness's hand-picking
            knob.
        join_method: Pin the physical join operator (``"hash"`` /
            ``"merge"``); ``"auto"`` (default) costs both.
        pushdown: Pin top-k cutoff pushdown below joins (``True`` on
            wherever valid, ``False`` off, ``None`` costed).
        aggregate_fusion: GROUP BY strategy — ``"rungen"`` (default)
            fuses aggregation into run generation, ``"postsort"``
            aggregates over an external sort of the raw input,
            ``"hash"`` keeps the legacy unbounded in-memory pass.
    """

    def __init__(
        self,
        memory_rows: int = 100_000,
        algorithm: str = "histogram",
        algorithm_options: dict | None = None,
        shards: int | str = 1,
        shard_options: dict | None = None,
        stats_catalog: StatsCatalog | None = None,
        stats_path=None,
        force_path: str | None = None,
        join_method: str = "auto",
        pushdown: bool | None = None,
        aggregate_fusion: str = "rungen",
    ):
        self._tables: dict[str, Table] = {}
        self.stats_catalog = (stats_catalog if stats_catalog is not None
                              else StatsCatalog(path=stats_path))
        self.planner = Planner(
            memory_rows=memory_rows,
            algorithm=algorithm,
            algorithm_options=algorithm_options,
            shards=shards,
            shard_options=shard_options,
            stats_catalog=self.stats_catalog,
            path=force_path,
            join_method=join_method,
            pushdown=pushdown,
            aggregate_fusion=aggregate_fusion,
        )

    # -- registry -------------------------------------------------------------

    def register_table(
        self,
        name: str,
        schema: Schema,
        source: Sequence[tuple] | Callable[[], Iterable[tuple]],
        row_count: int | None = None,
        sorted_by: Sequence[str] | None = None,
    ) -> Table:
        """Register (or replace) a table and return it.

        ``sorted_by`` declares the physical (ascending) sort order of the
        stored rows; the planner exploits shared prefixes with ORDER BY
        clauses (Section 4.2).

        Re-registering a name bumps the table's content version so that
        caches keyed on ``(name, version)`` stop serving stale entries.
        """
        previous = self._tables.get(name.upper())
        version = previous.version + 1 if previous is not None else 0
        table = Table(name, schema, source, row_count=row_count,
                      sorted_by=sorted_by, version=version)
        self._tables[name.upper()] = table
        if previous is not None:
            # Statistics describe table *content*; a replaced table must
            # not be planned with the old version's sketches.
            self.stats_catalog.invalidate(name)
        return table

    def analyze(self, name: str) -> TableStats:
        """Scan ``name`` and (re)build its statistics catalog entry.

        The explicit feed: exact row/null counts, min/max, KMV distinct
        estimates, and an equi-depth histogram per column.  Returns the
        stored :class:`~repro.stats.TableStats`.
        """
        return self.stats_catalog.analyze(self.table(name))

    def table(self, name: str) -> Table:
        """Look up a table case-insensitively."""
        try:
            return self._tables[name.upper()]
        except KeyError:
            raise PlanError(
                f"unknown table {name!r}; registered: "
                f"{sorted(self._tables)}") from None

    @property
    def tables(self) -> list[str]:
        """Names of all registered tables."""
        return sorted(self._tables)

    # -- execution ---------------------------------------------------------------

    def plan(self, sql_text: str) -> Operator:
        """Parse and plan without executing."""
        query = parse(sql_text)
        return self.planner.plan(query, self.table(query.table),
                                 join_table=self._join_table(query))

    def _join_table(self, query: ParsedQuery) -> Table | None:
        """Resolve the query's JOIN table, when it has one."""
        if query.join is None:
            return None
        return self.table(query.join.table)

    def sql(
        self,
        sql_text: str,
        *,
        memory_rows: int | None = None,
        cutoff_seed: Any = None,
        explain_analyze: bool = False,
        tracer: Tracer | None = None,
        shards: int | None = None,
    ) -> QueryResult:
        """Parse, plan and execute ``sql_text``; results are materialized.

        Args:
            memory_rows: Per-query memory budget override (e.g. a shrunk
                lease granted by a memory governor); ``None`` uses the
                session default.
            cutoff_seed: Optional initial cutoff bound for top-k plans
                (cutoff reuse).  Safety: a stale or over-tight seed is
                detected by the operator and the query is transparently
                re-executed without it, so the result is always correct.
            explain_analyze: Measure the execution: the result carries an
                :class:`~repro.obs.explain.AnalyzedPlan` (per-operator
                wall time, rows in/out, elimination sites, final cutoff)
                plus the cutoff timeline, and ``explain_analyze()``
                renders the classic text tree.  Implies a tracer.
            tracer: Optional :class:`~repro.obs.trace.Tracer` observing
                the execution (phase spans, cutoff refinement events).
            shards: Per-query worker-process count for sharded top-k
                execution (``None`` → session default; ``1`` forces
                single-process).
        """
        query = parse(sql_text)
        return self._execute(query, memory_rows=memory_rows,
                             cutoff_seed=cutoff_seed,
                             explain_analyze=explain_analyze,
                             tracer=tracer, shards=shards)

    def _execute(self, query: ParsedQuery, *, memory_rows: int | None,
                 cutoff_seed: Any, explain_analyze: bool = False,
                 tracer: Tracer | None = None,
                 shards: int | str | None = None) -> QueryResult:
        if explain_analyze and tracer is None:
            tracer = Tracer()
        table = self.table(query.table)
        plan = self.planner.plan(query, table,
                                 memory_rows=memory_rows,
                                 cutoff_seed=cutoff_seed,
                                 tracer=tracer, shards=shards,
                                 join_table=self._join_table(query))
        topk = _plan_topk_node(plan)
        harvest = (self._attach_harvest(topk, query)
                   if topk is not None else None)
        probe = PlanProbe(plan) if explain_analyze else None
        active = tracer if tracer is not None else NULL_TRACER
        try:
            with active.span("query", table=query.table):
                rows = list(plan.rows())
        except StaleCutoffSeed as exc:
            # The seed asserted coverage the input did not have.  The
            # session owns replayable sources, so correctness degrades to
            # a plain (seedless) re-execution, never to a wrong answer.
            release_plan_storage(plan)
            logger.warning("discarding stale cutoff seed: %s", exc)
            return self._execute(query, memory_rows=memory_rows,
                                 cutoff_seed=None,
                                 explain_analyze=explain_analyze,
                                 tracer=tracer, shards=shards)
        except BaseException:
            # Failed queries must not leak spill files (or pages).
            release_plan_storage(plan)
            raise
        if topk is not None:
            self._feed_stats(table, query, topk, harvest)
        stats = _collect_stats(plan)
        return QueryResult(rows=rows, schema=plan.schema, plan=plan,
                           query=query, stats=stats,
                           final_cutoff=_final_cutoff(plan),
                           analysis=(probe.analyze() if probe is not None
                                     else None),
                           tracer=tracer,
                           cutoff_timeline=_cutoff_timeline(plan))

    def explain(self, sql_text: str) -> str:
        """The physical plan for ``sql_text`` as text."""
        return self.plan(sql_text).explain()

    # -- statistics feedback ---------------------------------------------

    def _attach_harvest(self, topk: Operator, query: ParsedQuery):
        """Attach a run-histogram collector to the plan's top-k node.

        Returns ``(collector, column_name, un_normalize)`` when the
        execution's spilled-bucket boundaries can be mapped back into
        column value space, else ``None``:

        * WHERE predicates bias the scanned distribution — only
          predicate-free executions harvest;
        * the sort key must be a single non-nullable column whose
          normalized keys decode (raw values, negated numerics, or
          ``Desc`` wrappers — not order-preserving byte strings).
        """
        if query.predicates or query.join is not None:
            # Join output is not a column sample of the base table.
            return None
        spec = getattr(topk, "sort_spec", None)
        if spec is None or not hasattr(topk, "histogram_sink"):
            return None
        decision = topk.__dict__.get("decision")
        if decision is not None and decision.chosen.key_encoding == "ovc":
            return None
        un_normalize = key_value_decoder(spec)
        if un_normalize is None:
            return None
        pairs: list[tuple[Any, int]] = []
        topk.histogram_sink = (
            lambda bucket: pairs.append((bucket.boundary_key, bucket.size)))
        return pairs, spec.columns[0].name, un_normalize

    def _feed_stats(self, table: Table, query: ParsedQuery,
                    topk: Operator, harvest) -> None:
        """Post-execution catalog feedback (cardinalities + histograms)."""
        catalog = self.stats_catalog
        if harvest is not None:
            pairs, column, un_normalize = harvest
            if pairs:
                catalog.harvest(
                    table, column,
                    [(un_normalize(boundary), size)
                     for boundary, size in pairs])
        if query.join is not None:
            # The top-k consumed *join output* rows; feeding that back
            # as the left table's cardinality would corrupt the catalog.
            return
        stats = topk.__dict__.get("stats")
        consumed = getattr(stats, "rows_consumed", 0)
        if consumed:
            catalog.observe(table, cutoff_scope(query), consumed,
                            had_predicates=bool(query.predicates))

    def paginate(self, sql_text: str, page_size: int,
                 prefetch_pages: int = 4):
        """Serve a top-k query page by page without re-sorting per page.

        ``sql_text`` must be an ``ORDER BY ... LIMIT`` query without
        OFFSET or PER; its LIMIT is ignored in favor of ``page_size``
        paging.  Returns a :class:`~repro.extensions.offset.Paginator`
        whose pages are projected rows (Sections 2.7 / 4.1: the sorted
        runs from the first execution are retained and every later page
        merges from them).
        """
        from repro.extensions.offset import Paginator
        from repro.engine.operators import Project, TopK

        query = parse(sql_text)
        if (not query.is_topk or query.offset or query.per_column
                or query.join is not None or query.is_aggregate):
            raise PlanError(
                "paginate() needs a single-table ORDER BY ... LIMIT "
                "query without OFFSET, PER, JOIN or aggregates")
        plan = self.planner.plan(query, self.table(query.table))
        # Peel the projection and the top-k node: the paginator re-sorts
        # from the top-k's *input* and projects on the way out.
        projector = None
        node = plan
        if isinstance(node, Project):
            projector = node.schema.names
            source_schema = node.child.schema
            node = node.child
        if not isinstance(node, TopK):
            raise PlanError(
                "paginate() supports plain top-k plans only (the "
                "planner chose a specialized operator for this query)")
        child = node.child
        paginator = Paginator(
            make_input=child.rows,
            sort_key=node.sort_spec,
            page_size=page_size,
            memory_rows=self.planner.memory_rows,
            prefetch_pages=prefetch_pages,
        )
        if projector is None:
            return paginator
        return _ProjectedPaginator(paginator, source_schema, projector)


class _ProjectedPaginator:
    """Applies a column projection to every served page."""

    def __init__(self, paginator, schema: Schema, columns):
        self._paginator = paginator
        self._project = schema.projector(columns)

    def page(self, page_number: int) -> list[tuple]:
        project = self._project
        return [project(row) for row in self._paginator.page(page_number)]

    def pages(self):
        project = self._project
        for page in self._paginator.pages():
            yield [project(row) for row in page]

    @property
    def executions(self) -> int:
        return self._paginator.executions

    @property
    def stats(self):
        return self._paginator.stats


def _plan_topk_node(plan: Operator) -> Operator | None:
    """The plan's plain top-k node (row, vectorized, or sharded), if any."""
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, (TopK, VectorizedTopK)):
            return node
        stack.extend(node.children())
    return None


def _collect_stats(plan: Operator) -> OperatorStats:
    """Aggregate operator stats from the plan tree (nodes that execute a
    top-k algorithm carry an ``OperatorStats``)."""
    total = OperatorStats()
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node.__dict__.get("stats"), OperatorStats):
            total.merge(node.stats)
        stack.extend(node.children())
    return total


def _final_cutoff(plan: Operator) -> Any:
    """The achieved cutoff of the plan's top-k node, if any.

    Only plain (histogram) top-k nodes record one; the first non-``None``
    value wins (a supported plan has at most one such node).
    """
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, TopK) and node.last_impl is not None:
            cutoff = getattr(node.last_impl, "final_cutoff", None)
            if cutoff is not None:
                return cutoff
        stack.extend(node.children())
    return None


def _cutoff_timeline(plan: Operator) -> Any:
    """The top-k node's cutoff timeline, when one was recorded."""
    stack = [plan]
    while stack:
        node = stack.pop()
        impl = node.__dict__.get("last_impl")
        if impl is not None:
            timeline = getattr(impl, "timeline", None)
            if timeline is not None:
                return timeline
        stack.extend(node.children())
    return None


def release_plan_storage(plan: Operator) -> None:
    """Close every spill manager attached to the plan tree.

    Deletes all spill files a (possibly failed) execution left behind —
    sealed, unsealed, or merely undeleted — and releases backend
    resources.  Statistics counters survive (they are plain records).
    After this, the plan must not be re-executed.
    """
    stack = [plan]
    while stack:
        node = stack.pop()
        manager = node.__dict__.get("spill_manager")
        if manager is not None:
            manager.close()
        stack.extend(node.children())
