"""A small, thread-safe metrics registry: counters, gauges, histograms.

The service plane aggregates per-query observations into fleet-wide
metrics through one :class:`MetricsRegistry`.  The threading contract
mirrors :mod:`repro.storage.stats`: instruments are safe to update from
any thread (each holds its own lock), and :meth:`MetricsRegistry.snapshot`
returns an internally consistent, JSON-serializable dict — every
instrument is copied under its lock, so a snapshot taken mid-update never
observes a half-applied observation.

Histograms use **fixed bucket boundaries** chosen at creation: bucket
``i`` counts observations ``<= boundaries[i]``, with one implicit
overflow bucket above the last boundary (the Prometheus convention,
minus the cumulative encoding).
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Sequence

from repro.errors import ConfigurationError

#: Boundaries suiting sub-second to multi-second query latencies.
LATENCY_BOUNDARIES = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Boundaries suiting row-count magnitudes (spills, outputs).
ROWS_BOUNDARIES = (
    0, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000,
)


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {"type": "counter", "value": self._value}


class Gauge:
    """A value that can go up and down (e.g. in-flight queries)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value: int | float = 0

    def set(self, value: int | float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {"type": "gauge", "value": self._value}


class Histogram:
    """A fixed-boundary histogram with count/sum/min/max.

    Bucket ``i`` counts observations ``value <= boundaries[i]``; one
    overflow bucket counts the rest.  Boundaries are fixed at creation
    so concurrent observers only ever increment — no rebinning, no
    coordination beyond the per-instrument lock.
    """

    __slots__ = ("name", "boundaries", "_lock", "_bucket_counts",
                 "_count", "_sum", "_min", "_max")

    def __init__(self, name: str, boundaries: Sequence[float]):
        if not boundaries:
            raise ConfigurationError(
                f"histogram {self.__class__.__name__} {name!r} needs at "
                f"least one bucket boundary")
        ordered = list(boundaries)
        if ordered != sorted(ordered):
            raise ConfigurationError(
                f"histogram {name!r} boundaries must be sorted ascending")
        self.name = name
        self.boundaries = tuple(ordered)
        self._lock = threading.Lock()
        self._bucket_counts = [0] * (len(ordered) + 1)  # + overflow
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: int | float) -> None:
        """Record one observation."""
        index = bisect.bisect_left(self.boundaries, value)
        with self._lock:
            self._bucket_counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "type": "histogram",
                "boundaries": list(self.boundaries),
                "bucket_counts": list(self._bucket_counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted as a dict.

    ``counter``/``gauge``/``histogram`` are get-or-create: repeated calls
    with the same name return the same instrument, so call sites never
    coordinate registration.  Asking for an existing name as a different
    instrument kind (or a histogram with different boundaries) raises —
    silent aliasing would corrupt both series.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind, factory):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ConfigurationError(
                        f"metric {name!r} is a "
                        f"{type(existing).__name__.lower()}, not a "
                        f"{kind.__name__.lower()}")
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  boundaries: Sequence[float] = LATENCY_BOUNDARIES
                  ) -> Histogram:
        histogram = self._get_or_create(
            name, Histogram, lambda: Histogram(name, boundaries))
        if histogram.boundaries != tuple(boundaries):
            raise ConfigurationError(
                f"histogram {name!r} already exists with boundaries "
                f"{histogram.boundaries}")
        return histogram

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> dict[str, Any]:
        """A consistent, JSON-serializable copy of every instrument.

        The registry lock pins the instrument set; each instrument's own
        lock makes its copy atomic with respect to concurrent updates —
        a snapshot racing an ``observe``/``inc`` sees the observation
        either fully applied or not at all, never half (count bumped but
        sum not, etc.).
        """
        with self._lock:
            instruments = dict(self._instruments)
        return {name: instrument.snapshot()
                for name, instrument in sorted(instruments.items())}
