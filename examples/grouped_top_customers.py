"""Grouped top-k: "the most active customers from each country" (§4.3).

The paper's example is finding the top customers *within each country* —
one cutoff key and one histogram priority queue per group.  This example
builds a synthetic customer-activity table where countries differ wildly
in size and activity scale, runs a grouped top-k whose total output
exceeds operator memory, and shows the per-group cutoff keys the filter
learned.

It also demonstrates the parallel top-k (Section 4.4): the same global
query executed by four workers sharing one histogram priority queue.

Run:
    python examples/grouped_top_customers.py
"""

import random

from repro.extensions import GroupedTopK, ParallelTopK
from repro.rows import Schema, Column, ColumnType, SortSpec, SortColumn

CUSTOMERS = Schema([
    Column("country", ColumnType.STRING),
    Column("customer_id", ColumnType.INT64),
    Column("activity_score", ColumnType.FLOAT64),
])

#: Country -> (relative population weight, activity scale).
COUNTRIES = {
    "US": (30, 100.0),
    "IN": (25, 40.0),
    "DE": (10, 80.0),
    "BR": (12, 55.0),
    "JP": (8, 90.0),
    "NG": (9, 25.0),
    "IS": (1, 70.0),   # tiny population: may never establish a cutoff
}


def build_activity(rows: int, seed: int = 0) -> list[tuple]:
    rng = random.Random(seed)
    countries = list(COUNTRIES)
    weights = [COUNTRIES[c][0] for c in countries]
    table = []
    for customer_id in range(rows):
        country = rng.choices(countries, weights=weights)[0]
        scale = COUNTRIES[country][1]
        table.append((country, customer_id, rng.random() * scale))
    return table


def main() -> None:
    rows = build_activity(300_000, seed=9)
    top_per_country = 2_000

    # Most active = highest score: sort descending within each group.
    spec = SortSpec(CUSTOMERS, [SortColumn("activity_score",
                                           ascending=False)])
    operator = GroupedTopK(
        group_key=lambda row: row[0],
        sort_key=spec,
        k=top_per_country,
        memory_rows=8_000,
    )
    by_country: dict[str, list[tuple]] = {}
    for country, row in operator.execute(iter(rows)):
        by_country.setdefault(country, []).append(row)

    print(f"top {top_per_country:,} customers per country "
          f"({len(rows):,} activity rows, memory for 8,000):\n")
    print(f"{'country':>8} {'kept':>6} {'best score':>11} "
          f"{'cutoff key':>12}")
    for country in sorted(by_country):
        kept = by_country[country]
        cutoff = operator.cutoff_key(country)
        cutoff_text = (f"{-cutoff.value if hasattr(cutoff, 'value') else -cutoff:.2f}"
                       if cutoff is not None else "(none)")
        print(f"{country:>8} {len(kept):>6,} {kept[0][2]:>11.2f} "
              f"{cutoff_text:>12}")
    print(f"\nrows spilled: {operator.stats.io.rows_spilled:,} of "
          f"{len(rows):,} "
          f"({operator.stats.elimination_fraction:.1%} eliminated early)")

    # --- the same data, global top-k, executed in parallel -------------
    print("\nparallel global top-10,000 (4 workers, shared filter):")
    parallel = ParallelTopK(
        sort_key=spec,
        k=10_000,
        memory_rows=8_000,
        workers=4,
    )
    top_global = list(parallel.execute(iter(rows)))
    print(f"  produced {len(top_global):,} rows; "
          f"spilled {parallel.total_rows_spilled:,} across workers")
    eliminated = sum(stats.rows_eliminated_on_arrival
                     for stats in parallel.worker_stats)
    print(f"  rows eliminated on arrival by the shared cutoff: "
          f"{eliminated:,}")
    print(f"  global #1: country={top_global[0][0]} "
          f"score={top_global[0][2]:.2f}")


if __name__ == "__main__":
    main()
