"""Tests for the disaggregated-storage cost model."""

import pytest

from repro.storage.costmodel import (
    CostModel,
    DEFAULT_COST_MODEL,
    IO_BOUND_COST_MODEL,
    ResourceCost,
)
from repro.storage.stats import IOStats, OperatorStats


class TestCostModel:
    def test_zero_stats_cost_zero(self):
        assert DEFAULT_COST_MODEL.total_seconds(OperatorStats()) == 0.0

    def test_io_seconds_charges_requests(self):
        io = IOStats(write_requests=10)
        model = CostModel(request_overhead_s=0.001)
        assert model.io_seconds(io) == pytest.approx(0.01)

    def test_io_seconds_charges_bandwidth(self):
        io = IOStats(bytes_written=120_000_000)
        model = CostModel(request_overhead_s=0.0,
                          write_bandwidth_bytes_per_s=120e6)
        assert model.io_seconds(io) == pytest.approx(1.0)

    def test_random_reads_are_expensive(self):
        sequential = IOStats(read_requests=100)
        random_io = IOStats(random_reads=100)
        assert (DEFAULT_COST_MODEL.io_seconds(random_io)
                > DEFAULT_COST_MODEL.io_seconds(sequential))

    def test_cpu_seconds_scale_with_rows(self):
        small = OperatorStats(rows_consumed=1_000)
        large = OperatorStats(rows_consumed=1_000_000)
        assert (DEFAULT_COST_MODEL.cpu_seconds(large)
                > DEFAULT_COST_MODEL.cpu_seconds(small))

    def test_total_is_cpu_plus_io(self):
        stats = OperatorStats(rows_consumed=1000)
        stats.io.bytes_written = 1_000_000
        stats.io.write_requests = 10
        total = DEFAULT_COST_MODEL.total_seconds(stats)
        assert total == pytest.approx(
            DEFAULT_COST_MODEL.cpu_seconds(stats)
            + DEFAULT_COST_MODEL.io_seconds(stats.io))

    def test_more_spill_costs_more(self):
        light, heavy = OperatorStats(), OperatorStats()
        light.io.bytes_written = 1_000_000
        light.io.write_requests = 10
        heavy.io.bytes_written = 50_000_000
        heavy.io.write_requests = 500
        assert (DEFAULT_COST_MODEL.total_seconds(heavy)
                > DEFAULT_COST_MODEL.total_seconds(light))

    def test_io_bound_model_ignores_cpu(self):
        stats = OperatorStats(rows_consumed=10**9)
        assert IO_BOUND_COST_MODEL.cpu_seconds(stats) == 0.0


class TestResourceCost:
    def test_gigabyte_seconds(self):
        cost = ResourceCost(memory_bytes=2_000_000_000, seconds=3.0)
        assert cost.gigabyte_seconds == pytest.approx(6.0)

    def test_improvement_over(self):
        cheap = ResourceCost(memory_bytes=10**9, seconds=1.0)
        pricey = ResourceCost(memory_bytes=10**9, seconds=3.0)
        assert cheap.improvement_over(pricey) == pytest.approx(3.0)

    def test_improvement_over_zero_cost(self):
        free = ResourceCost(memory_bytes=0, seconds=1.0)
        other = ResourceCost(memory_bytes=10**9, seconds=1.0)
        assert free.improvement_over(other) == float("inf")
