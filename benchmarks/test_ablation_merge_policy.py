"""Ablation: merge-step selection policy (Section 4.1).

"The traditional policy for merging runs chooses the smallest remaining
runs ... In a top operation, however, each merge step should choose the
runs with the lowest keys."  This ablation compares both policies under a
tight fan-in.
"""

from conftest import bench_workload
from repro.experiments.harness import run_algorithm
from repro.sorting.merge import MergePolicy


def _run(policy, workload):
    return run_algorithm("histogram", workload, fan_in=4,
                         merge_policy=policy)


def test_ablation_lowest_keys_first(benchmark, workload):
    result = benchmark(_run, MergePolicy.LOWEST_KEYS_FIRST, workload)
    assert result.output_rows == workload.k


def test_ablation_smallest_first(benchmark, workload):
    result = benchmark(_run, MergePolicy.SMALLEST_FIRST, workload)
    assert result.output_rows == workload.k


def test_ablation_policies_agree_on_answer(benchmark):
    def run():
        workload = bench_workload()
        return (_run(MergePolicy.LOWEST_KEYS_FIRST, workload),
                _run(MergePolicy.SMALLEST_FIRST, workload))

    lowest, smallest = benchmark(run)
    assert (lowest.first_key, lowest.last_key) \
        == (smallest.first_key, smallest.last_key)
