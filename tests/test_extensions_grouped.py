"""Tests for grouped top-k (Section 4.3)."""

import collections
import random

import pytest

from repro.errors import ConfigurationError
from repro.extensions.grouped import GroupedTopK

GROUP = lambda row: row[0]  # noqa: E731
VALUE = lambda row: row[1]  # noqa: E731


def grouped_input(groups, rows, seed=0):
    rng = random.Random(seed)
    return [(rng.randrange(groups), rng.random()) for _ in range(rows)]


def expected_per_group(rows, k):
    by_group = collections.defaultdict(list)
    for row in rows:
        by_group[row[0]].append(row)
    return {group: sorted(members, key=VALUE)[:k]
            for group, members in by_group.items()}


class TestGroupedTopK:
    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            GroupedTopK(GROUP, VALUE, k=0, memory_rows=10)
        with pytest.raises(ConfigurationError):
            GroupedTopK(GROUP, VALUE, k=5, memory_rows=0)

    def test_per_group_topk_correct(self):
        rows = grouped_input(6, 30_000)
        operator = GroupedTopK(GROUP, VALUE, k=400, memory_rows=800)
        got = collections.defaultdict(list)
        for group, row in operator.execute(iter(rows)):
            got[group].append(row)
        expected = expected_per_group(rows, 400)
        assert dict(got) == expected

    def test_output_grouped_and_sorted_within_group(self):
        rows = grouped_input(4, 8_000)
        operator = GroupedTopK(GROUP, VALUE, k=100, memory_rows=500)
        output = list(operator.execute(iter(rows)))
        groups_seen = [group for group, _row in output]
        # Group-contiguous output.
        boundaries = [g for i, g in enumerate(groups_seen)
                      if i == 0 or groups_seen[i - 1] != g]
        assert len(boundaries) == len(set(groups_seen))
        # Sorted within each group.
        for group in set(groups_seen):
            keys = [row[1] for g, row in output if g == group]
            assert keys == sorted(keys)

    def test_filters_reduce_spill(self):
        rows = grouped_input(5, 30_000)
        filtered = GroupedTopK(GROUP, VALUE, k=100, memory_rows=500)
        list(filtered.execute(iter(rows)))
        everything = GroupedTopK(GROUP, VALUE, k=10_000, memory_rows=500)
        list(everything.execute(iter(rows)))
        assert (filtered.stats.io.rows_spilled
                < everything.stats.io.rows_spilled)

    def test_per_group_cutoffs_tracked_separately(self):
        rng = random.Random(7)
        # Group "hot" has tiny values, group "cold" large ones: the
        # cutoffs must differ.
        rows = []
        for _ in range(20_000):
            if rng.random() < 0.5:
                rows.append(("hot", rng.random() * 0.01))
            else:
                rows.append(("cold", 1.0 + rng.random()))
        operator = GroupedTopK(GROUP, VALUE, k=200, memory_rows=400)
        list(operator.execute(iter(rows)))
        hot_cutoff = operator.cutoff_key("hot")
        cold_cutoff = operator.cutoff_key("cold")
        assert hot_cutoff is not None and cold_cutoff is not None
        assert hot_cutoff < 0.02
        assert cold_cutoff > 1.0

    def test_small_groups_never_establish_cutoffs(self):
        rows = [(1, 0.5), (2, 0.25), (1, 0.75)]
        operator = GroupedTopK(GROUP, VALUE, k=100, memory_rows=2)
        output = list(operator.execute(iter(rows)))
        assert len(output) == 3
        assert operator.cutoff_key(1) is None

    def test_string_groups(self):
        rng = random.Random(9)
        rows = [(rng.choice(["us", "de", "jp"]), rng.random())
                for _ in range(5_000)]
        operator = GroupedTopK(GROUP, VALUE, k=50, memory_rows=300)
        got = collections.defaultdict(list)
        for group, row in operator.execute(iter(rows)):
            got[group].append(row)
        assert dict(got) == expected_per_group(rows, 50)

    def test_mixed_type_groups_do_not_crash(self):
        rows = [(1, 0.5), ("a", 0.25), (2, 0.1), ("b", 0.9)] * 50
        operator = GroupedTopK(GROUP, VALUE, k=10, memory_rows=20)
        output = list(operator.execute(iter(rows)))
        assert len(output) == 4 * 10

    def test_empty_input(self):
        operator = GroupedTopK(GROUP, VALUE, k=10, memory_rows=20)
        assert list(operator.execute(iter([]))) == []


class TestNullAndEdgeGroups:
    def test_null_group_keys_form_one_group(self):
        rng = random.Random(3)
        rows = [(rng.choice([None, "a", "b"]), rng.random())
                for _ in range(4_000)]
        operator = GroupedTopK(GROUP, VALUE, k=30, memory_rows=200)
        got = collections.defaultdict(list)
        for group, row in operator.execute(iter(rows)):
            got[group].append(row)
        assert dict(got) == expected_per_group(rows, 30)
        assert None in got and len(got[None]) == 30

    def test_null_group_emits_last(self):
        """The NULLS LAST regression pin: tuple-key execution must order
        the None group after every comparable group, matching the binary
        composite-key lowering's byte order."""
        rng = random.Random(4)
        rows = [(rng.choice([None, 1, 2]), rng.random())
                for _ in range(2_000)]
        operator = GroupedTopK(GROUP, VALUE, k=10, memory_rows=100)
        groups_seen = [group for group, _row in operator.execute(iter(rows))]
        assert groups_seen[-1] is None
        assert [g for i, g in enumerate(groups_seen)
                if i == 0 or groups_seen[i - 1] != g] == [1, 2, None]

    def test_single_mega_group_matches_plain_topk(self):
        rng = random.Random(5)
        rows = [("only", rng.random()) for _ in range(20_000)]
        operator = GroupedTopK(GROUP, VALUE, k=500, memory_rows=400)
        output = [row for _group, row in operator.execute(iter(rows))]
        assert output == sorted(rows, key=VALUE)[:500]
        # The single group's cutoff engaged like a plain top-k's would.
        assert operator.cutoff_key("only") is not None
        assert operator.stats.rows_eliminated_on_arrival > 0

    def test_k_larger_than_every_group(self):
        rng = random.Random(6)
        rows = [(rng.randrange(8), rng.random()) for _ in range(200)]
        operator = GroupedTopK(GROUP, VALUE, k=10_000, memory_rows=50)
        got = collections.defaultdict(list)
        for group, row in operator.execute(iter(rows)):
            got[group].append(row)
        assert sum(len(members) for members in got.values()) == len(rows)
        assert dict(got) == expected_per_group(rows, 10_000)


class TestGroupOrderable:
    def test_hash_eq_consistency(self):
        from repro.extensions.grouped import _group_orderable

        pairs = [(1, 1), ("a", "a"), (None, None), ((1, 2), (1, 2))]
        for a, b in pairs:
            wa, wb = _group_orderable(a), _group_orderable(b)
            assert wa == wb
            assert hash(wa) == hash(wb)
        assert _group_orderable(1) != _group_orderable(2)
        # Never equal to the unwrapped value (dict keys must not alias).
        assert _group_orderable(1) != 1

    def test_none_orders_last_against_everything(self):
        from repro.extensions.grouped import _group_orderable

        none = _group_orderable(None)
        for other in (1, -(10 ** 9), "", "z", (1,), 0.0):
            wrapped = _group_orderable(other)
            assert wrapped < none
            assert not none < wrapped
        assert not none < _group_orderable(None)

    def test_mixed_types_order_consistently(self):
        from repro.extensions.grouped import _group_orderable

        wrapped = [_group_orderable(g)
                   for g in (3, "b", 1, "a", (2,), None)]
        ordered = sorted(wrapped)
        assert sorted(wrapped) == ordered  # deterministic / total
        assert ordered[-1].group is None
        # Same-type runs keep their natural order.
        ints = [w.group for w in ordered if isinstance(w.group, int)]
        assert ints == sorted(ints)
