"""Benchmark: Table 4 — varying input size at full paper sizes.

Includes the paper's most striking rows: 100,000,000-row inputs with the
algorithm spilling only ~61k rows (three orders of magnitude less than a
traditional external sort).
"""

import pytest

from repro.core.analysis import simulate_uniform
from repro.experiments.paper_data import TABLE4


@pytest.mark.parametrize("input_rows",
                         [10_000, 1_000_000, 10_000_000, 100_000_000])
def test_table4_row(benchmark, input_rows):
    runs, rows, cutoff, _ideal, _ratio = TABLE4[input_rows]
    result = benchmark(simulate_uniform, input_rows, 5_000, 1_000, 9)
    assert result.runs == runs
    assert result.rows_spilled == pytest.approx(rows, rel=0.002, abs=4)
    assert result.final_cutoff == pytest.approx(cutoff, rel=1e-2)


def test_table4_doubling_input_adds_few_runs(benchmark):
    """The incremental-sharpening claim of Section 3.2.2."""

    def sweep():
        return [simulate_uniform(n, 5_000, 1_000, 9)
                for n in (1_000_000, 2_000_000, 50_000_000, 100_000_000)]

    one, two, fifty, hundred = benchmark(sweep)
    assert two.runs - one.runs <= 6
    assert hundred.runs - fifty.runs <= 6
    assert hundred.rows_spilled - fifty.rows_spilled < 5_000
