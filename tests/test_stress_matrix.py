"""Configuration-matrix stress tests.

One end-to-end correctness sweep across the whole configuration space:
run generation x histogram sizing x fan-in x consolidation x offset x
distribution.  Catches interactions no single-feature test exercises.
"""

import itertools
import random

import pytest

from repro.core.policies import policy_for_bucket_count
from repro.core.topk import HistogramTopK
from repro.datagen.distributions import (
    ASCENDING,
    DESCENDING,
    LOGNORMAL,
    UNIFORM,
    fal,
)

KEY = lambda row: row[0]  # noqa: E731

RUN_GENERATION = ("replacement_selection", "quicksort")
BUCKETS = (0, 1, 9, 50)
FAN_IN = (None, 3)
CAPACITY = (None, 6)

MATRIX = list(itertools.product(RUN_GENERATION, BUCKETS, FAN_IN, CAPACITY))


@pytest.fixture(scope="module")
def dataset():
    rng = random.Random(99)
    return [(rng.random(),) for _ in range(6_000)]


@pytest.mark.parametrize(
    "run_generation,buckets,fan_in,capacity", MATRIX,
    ids=[f"{g}-b{b}-f{f}-c{c}" for g, b, f, c in MATRIX])
def test_configuration_matrix(dataset, run_generation, buckets, fan_in,
                              capacity):
    operator = HistogramTopK(
        KEY, 700, 150,
        run_generation=run_generation,
        sizing_policy=policy_for_bucket_count(buckets, capped=False),
        fan_in=fan_in,
        histogram_bucket_capacity=capacity,
    )
    assert list(operator.execute(iter(dataset))) == sorted(dataset)[:700]


@pytest.mark.parametrize("distribution",
                         [UNIFORM, LOGNORMAL, fal(0.5), fal(1.5),
                          ASCENDING, DESCENDING],
                         ids=lambda d: d.label)
@pytest.mark.parametrize("offset", [0, 37, 500])
def test_distribution_offset_matrix(distribution, offset):
    keys = distribution.sample(8_000, seed=5)
    rows = [(float(key),) for key in keys]
    operator = HistogramTopK(KEY, 400, 120, offset=offset)
    expected = sorted(rows)[offset:offset + 400]
    assert list(operator.execute(iter(rows))) == expected
