#!/usr/bin/env python
"""Microbenchmark: the spill fast path on a disk-heavy top-k workload.

Runs a spill-heavy top-k (small memory, large k, real disk backend)
through the three execution paths and, for each, ablates the two spill
fast-path components independently:

* codec — ``pickle`` (the compatibility format; for the vectorized path
  this is ``pickle_rows``, re-encoding each run as pickled row tuples)
  vs ``typed`` (schema-driven columnar pages; raw array bytes for the
  vectorized path);
* writes — ``sync`` (the caller thread blocks on every ``write()``) vs
  ``bg`` (double-buffered background writer threads).

``pickle_sync`` is the baseline; the headline number is the end-to-end
speedup of ``typed_bg`` over it per path.  Every variant's output rows
are asserted identical, and per-variant physical traffic
(``bytes_encoded``/``bytes_decoded``) and queue stalls are reported so a
regression in one component is visible in isolation.

Results are written as JSON (default ``BENCH_spill.json``) so CI can
smoke-run with a tiny ``--rows`` budget and assert the file parses.

Usage::

    python benchmarks/bench_spill.py                  # 1M rows
    python benchmarks/bench_spill.py --rows 20000 --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.topk import HistogramTopK  # noqa: E402
from repro.datagen.workloads import keys_only_workload  # noqa: E402
from repro.engine.operators import (  # noqa: E402
    Table,
    TableScan,
    VectorizedTopK,
)
from repro.rows.batch import batches_from_rows  # noqa: E402
from repro.storage.codec import TypedPageCodec  # noqa: E402
from repro.storage.spill import DiskSpillBackend, SpillManager  # noqa: E402
from repro.vectorized.runs import VectorRunDisk, VectorRunStore  # noqa: E402

#: Spill-heavy proportions: a large output relative to a small memory
#: budget keeps the cutoff filter loose, so a sizable fraction of the
#: input genuinely reaches the disk.
MEMORY_FRACTION = 1 / 250
K_FRACTION = 1 / 20

VARIANTS = [
    ("pickle_sync", "pickle", False),
    ("typed_sync", "typed", False),
    ("pickle_bg", "pickle", True),
    ("typed_bg", "typed", True),
]
BASELINE = "pickle_sync"
FAST = "typed_bg"


def build_workload(input_rows: int):
    memory_rows = max(64, int(input_rows * MEMORY_FRACTION))
    k = max(memory_rows + 1, int(input_rows * K_FRACTION))
    return keys_only_workload(input_rows, k, memory_rows, seed=7)


def _manager(workload, codec: str, background: bool) -> SpillManager:
    page_codec = (TypedPageCodec(workload.schema) if codec == "typed"
                  else None)
    backend = DiskSpillBackend(codec=page_codec,
                               background_writes=background)
    return SpillManager(backend=backend)


def run_row(workload, rows, codec: str, background: bool):
    manager = _manager(workload, codec, background)
    operator = HistogramTopK(workload.sort_spec, workload.k,
                             workload.memory_rows, spill_manager=manager)
    output = list(operator.execute(iter(rows)))
    manager.close()
    return output, operator.stats


def run_batch(workload, rows, codec: str, background: bool):
    manager = _manager(workload, codec, background)
    operator = HistogramTopK(workload.sort_spec, workload.k,
                             workload.memory_rows, spill_manager=manager)
    output = list(operator.execute_batches(
        batches_from_rows(rows, workload.schema)))
    manager.close()
    return output, operator.stats


def run_vectorized(workload, rows, codec: str, background: bool):
    storage = VectorRunDisk(background_writes=background,
                            pickle_rows=(codec == "pickle"))
    store = VectorRunStore(storage=storage)
    table = Table("KEYS", workload.schema, rows)
    operator = VectorizedTopK(TableScan(table), workload.sort_spec,
                              k=workload.k,
                              memory_rows=workload.memory_rows,
                              store=store)
    output = list(operator.rows())
    store.close()
    return output, operator.stats


PATHS = {
    "row": run_row,
    "batch": run_batch,
    "vectorized": run_vectorized,
}


def measure(workload, rows, repeat: int) -> dict:
    results = {}
    for path_name, runner in PATHS.items():
        per_variant = {}
        reference = None
        for variant, codec, background in VARIANTS:
            best = float("inf")
            output = stats = None
            for _ in range(repeat):
                started = time.perf_counter()
                output, stats = runner(workload, rows, codec, background)
                best = min(best, time.perf_counter() - started)
            if reference is None:
                reference = output
            elif output != reference:
                raise AssertionError(
                    f"{path_name}/{variant} produced different output rows")
            io = stats.io
            per_variant[variant] = {
                "seconds": best,
                "rows_per_sec": workload.input_rows / best,
                "rows_spilled": io.rows_spilled,
                "bytes_encoded": io.bytes_encoded,
                "bytes_decoded": io.bytes_decoded,
                "writer_stalls": io.writer_stalls,
                "read_stalls": io.read_stalls,
                "encode_seconds": round(io.encode_seconds, 6),
                "decode_seconds": round(io.decode_seconds, 6),
                "write_seconds": round(io.write_seconds, 6),
                "stall_seconds": round(io.stall_seconds, 6),
            }
        baseline = per_variant[BASELINE]["seconds"]
        for variant in per_variant:
            per_variant[variant]["speedup_vs_baseline"] = \
                baseline / per_variant[variant]["seconds"]
        results[path_name] = per_variant
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=1_000_000,
                        help="input rows (default 1M; CI uses a tiny "
                             "budget)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="timed repetitions per variant (best kept)")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_spill.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    workload = build_workload(args.rows)
    print(f"workload: {workload.name} [disk spill backend]", flush=True)
    rows = list(workload.make_input())

    paths = measure(workload, rows, args.repeat)
    report = {
        "benchmark": "spill_path",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "workload": {
            "input_rows": workload.input_rows,
            "k": workload.k,
            "memory_rows": workload.memory_rows,
            "distribution": workload.distribution_label,
            "backend": "disk",
        },
        "variants": [name for name, _codec, _bg in VARIANTS],
        "baseline": BASELINE,
        "paths": paths,
        "fast_path_speedup": {
            path: entries[FAST]["speedup_vs_baseline"]
            for path, entries in paths.items()
        },
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    for path, entries in paths.items():
        print(f"-- {path}")
        for variant, entry in entries.items():
            print(f"  {variant:>12}: {entry['seconds']:.3f}s "
                  f"({entry['rows_per_sec']:>12,.0f} rows/sec, "
                  f"spilled {entry['rows_spilled']:,}, "
                  f"encoded {entry['bytes_encoded']:,} B, "
                  f"{entry['speedup_vs_baseline']:.2f}x)")
    for path, speedup in report["fast_path_speedup"].items():
        print(f"{path}: {FAST} is {speedup:.2f}x over {BASELINE}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
