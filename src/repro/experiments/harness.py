"""Experiment harness: run algorithms on workloads and measure.

Used by the table/figure drivers and the benchmark suite.  A measurement
captures three views of cost:

* **rows spilled / runs written** — the paper's principal metric,
  deterministic and interpreter-independent;
* **simulated seconds** — the disaggregated-storage cost model applied to
  the I/O counters (plus CPU proxies), preserving the paper's
  time-speedup shapes;
* **wall seconds** — honest interpreter time, reported but not used for
  paper comparisons (a Python interpreter is not an F1 worker).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.baselines.optimized_topk import OptimizedMergeSortTopK
from repro.baselines.priority_queue_topk import PriorityQueueTopK
from repro.baselines.traditional_topk import TraditionalMergeSortTopK
from repro.core.topk import HistogramTopK
from repro.datagen.workloads import Workload
from repro.errors import ConfigurationError
from repro.storage.costmodel import (
    CostModel,
    SCALED_COST_MODEL,
    ResourceCost,
)
from repro.storage.spill import SpillManager
from repro.storage.stats import OperatorStats

#: Approximate bytes per LINEITEM row; makes the row-count memory budget
#: consistent with the paper's "1 GB is sufficient for 7 million rows".
LINEITEM_ROW_BYTES = 143

#: Merge fan-in used by every external algorithm in the harness.  A
#: production engine bounds the runs merged at once by the merge buffers
#: that fit in operator memory; 16 is a typical value.  Fan-in limits are
#: what make a full external sort pay multi-pass merge I/O — a real cost
#: of the baselines that an unlimited merge would hide.
DEFAULT_FAN_IN = 16


@dataclass(frozen=True)
class Scale:
    """A proportional shrink of the paper's evaluation sizes.

    The algorithm's behavior depends on the input : k : memory *ratios*
    (Table 4 demonstrates the scale-invariance), so dividing all three by
    the same factor preserves every comparative shape while keeping pure
    Python runtimes sane.
    """

    name: str
    factor: int

    def rows(self, paper_rows: int) -> int:
        """Scale a paper row count down, keeping at least one row."""
        return max(1, paper_rows // self.factor)


#: 1/1000 of the paper: memory 7k rows, k 30k, inputs 50k - 2M.
PAPER_SCALE = Scale("paper/1000", 1_000)
#: 1/10000 of the paper: benchmark-friendly sizes.
QUICK_SCALE = Scale("paper/10000", 10_000)

#: Paper evaluation constants (Section 5.1.2): memory and default k.
PAPER_MEMORY_ROWS = 7_000_000
PAPER_DEFAULT_K = 30_000_000
PAPER_MAX_INPUT = 2_000_000_000


@dataclass
class RunResult:
    """One algorithm execution over one workload."""

    algorithm: str
    workload: str
    k: int
    input_rows: int
    memory_rows: int
    output_rows: int
    wall_seconds: float
    stats: OperatorStats
    cost_model: CostModel = SCALED_COST_MODEL
    first_key: Any = None
    last_key: Any = None

    @property
    def rows_spilled(self) -> int:
        return self.stats.io.rows_spilled

    @property
    def runs_written(self) -> int:
        return self.stats.io.runs_written

    @property
    def simulated_seconds(self) -> float:
        return self.cost_model.total_seconds(self.stats)

    def resource_cost(self, row_bytes: int = LINEITEM_ROW_BYTES,
                      memory_rows: int | None = None) -> ResourceCost:
        """Pay-as-you-go cost (Section 5.6): memory footprint x time."""
        rows = memory_rows if memory_rows is not None else self.memory_rows
        return ResourceCost(memory_bytes=rows * row_bytes,
                            seconds=self.simulated_seconds)


def _make_spill_manager(row_bytes: int) -> SpillManager:
    return SpillManager(row_size=lambda _row: row_bytes)


def _build_algorithm(name: str, workload: Workload,
                     spill_manager: SpillManager,
                     options: dict):
    common = dict(k=workload.k, stats=OperatorStats())
    if name == "priority_queue":
        return PriorityQueueTopK(workload.sort_spec, memory_rows=None,
                                 **common, **options)
    options.setdefault("fan_in", DEFAULT_FAN_IN)
    common["memory_rows"] = workload.memory_rows
    common["spill_manager"] = spill_manager
    if name == "histogram":
        return HistogramTopK(workload.sort_spec, **common, **options)
    if name == "optimized":
        return OptimizedMergeSortTopK(workload.sort_spec, **common, **options)
    if name == "traditional":
        return TraditionalMergeSortTopK(workload.sort_spec, **common,
                                        **options)
    raise ConfigurationError(f"unknown algorithm {name!r}")


def run_algorithm(
    name: str,
    workload: Workload,
    row_bytes: int = LINEITEM_ROW_BYTES,
    cost_model: CostModel = SCALED_COST_MODEL,
    batch_mode: bool = False,
    **options,
) -> RunResult:
    """Execute algorithm ``name`` on ``workload`` and measure it.

    ``batch_mode`` feeds the input through the batch pipeline
    (``execute_batches``) instead of row at a time — same output, but
    vectorized arrival filtering where the algorithm supports it.
    """
    spill_manager = _make_spill_manager(row_bytes)
    algorithm = _build_algorithm(name, workload, spill_manager, options)
    key = workload.sort_spec.key
    started = time.perf_counter()
    first_key = last_key = None
    output_rows = 0
    if batch_mode:
        from repro.rows.batch import batches_from_rows

        output = algorithm.execute_batches(batches_from_rows(
            workload.make_input(), workload.sort_spec.schema))
    else:
        output = algorithm.execute(workload.make_input())
    for row in output:
        if output_rows == 0:
            first_key = key(row)
        last_key = key(row)
        output_rows += 1
    wall = time.perf_counter() - started
    return RunResult(
        algorithm=name,
        workload=workload.name,
        k=workload.k,
        input_rows=workload.input_rows,
        memory_rows=workload.memory_rows,
        output_rows=output_rows,
        wall_seconds=wall,
        stats=algorithm.stats,
        cost_model=cost_model,
        first_key=first_key,
        last_key=last_key,
    )


@dataclass
class Comparison:
    """Paper-style improvement of our algorithm over a baseline."""

    ours: RunResult
    baseline: RunResult

    @property
    def speedup(self) -> float:
        """Simulated-time speedup (baseline / ours)."""
        mine = self.ours.simulated_seconds
        if mine == 0:
            return float("inf")
        return self.baseline.simulated_seconds / mine

    @property
    def wall_speedup(self) -> float:
        """Wall-clock speedup (interpreter time; informational)."""
        if self.ours.wall_seconds == 0:
            return float("inf")
        return self.baseline.wall_seconds / self.ours.wall_seconds

    @property
    def spill_reduction(self) -> float:
        """Rows-spilled reduction (baseline / ours)."""
        if self.ours.rows_spilled == 0:
            return float("inf") if self.baseline.rows_spilled else 1.0
        return self.baseline.rows_spilled / self.ours.rows_spilled

    def verify_same_output(self) -> bool:
        """Both algorithms must report identical result boundaries."""
        return (self.ours.output_rows == self.baseline.output_rows
                and self.ours.first_key == self.baseline.first_key
                and self.ours.last_key == self.baseline.last_key)


def compare(
    workload: Workload,
    baseline: str = "optimized",
    ours: str = "histogram",
    row_bytes: int = LINEITEM_ROW_BYTES,
    cost_model: CostModel = SCALED_COST_MODEL,
    ours_options: dict | None = None,
    baseline_options: dict | None = None,
) -> Comparison:
    """Run ours-vs-baseline on identical data and return the comparison."""
    ours_result = run_algorithm(ours, workload, row_bytes=row_bytes,
                                cost_model=cost_model,
                                **(ours_options or {}))
    baseline_result = run_algorithm(baseline, workload, row_bytes=row_bytes,
                                    cost_model=cost_model,
                                    **(baseline_options or {}))
    return Comparison(ours=ours_result, baseline=baseline_result)
