"""Tests for parallel top-k with shared/exchanged cutoff filters."""

import random

import pytest

from repro.core.histogram import Bucket
from repro.errors import ConfigurationError
from repro.extensions.parallel import ParallelTopK, SharedCutoffFilter

KEY = lambda row: row[0]  # noqa: E731


def uniform(count, seed=0):
    rng = random.Random(seed)
    return [(rng.random(),) for _ in range(count)]


class TestSharedCutoffFilter:
    def test_delegates_to_inner_filter(self):
        shared = SharedCutoffFilter(k=10)
        shared.insert(Bucket(0.5, 10))
        assert shared.cutoff_key == 0.5
        assert shared.eliminate(0.6)
        assert not shared.eliminate(0.5)

    def test_concurrent_inserts_preserve_invariants(self):
        import threading

        shared = SharedCutoffFilter(k=500)
        rng = random.Random(1)
        batches = [[(rng.random(), rng.randrange(1, 5))
                    for _ in range(2_000)] for _ in range(4)]

        def feed(batch):
            for boundary, size in batch:
                shared.insert(Bucket(boundary, size))

        threads = [threading.Thread(target=feed, args=(batch,))
                   for batch in batches]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert shared._filter.coverage >= 500
        assert shared.cutoff_key is not None


class TestParallelTopK:
    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            ParallelTopK(KEY, k=0, memory_rows=100)
        with pytest.raises(ConfigurationError):
            ParallelTopK(KEY, k=10, memory_rows=100, workers=0)
        with pytest.raises(ConfigurationError):
            ParallelTopK(KEY, k=10, memory_rows=2, workers=4)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_correctness_threads(self, workers):
        rows = uniform(20_000, seed=2)
        operator = ParallelTopK(KEY, k=1_500, memory_rows=1_200,
                                workers=workers)
        assert list(operator.execute(iter(rows))) \
            == sorted(rows)[:1_500]

    def test_correctness_sequential_mode(self):
        rows = uniform(20_000, seed=3)
        operator = ParallelTopK(KEY, k=1_500, memory_rows=1_200,
                                workers=3, use_threads=False)
        assert list(operator.execute(iter(rows))) == sorted(rows)[:1_500]

    def test_sequential_mode_deterministic(self):
        rows = uniform(10_000, seed=4)
        spills = []
        for _ in range(2):
            operator = ParallelTopK(KEY, k=800, memory_rows=900,
                                    workers=3, use_threads=False)
            list(operator.execute(iter(rows)))
            spills.append(operator.total_rows_spilled)
        assert spills[0] == spills[1]

    def test_shared_filter_eliminates_rows(self):
        rows = uniform(40_000, seed=5)
        operator = ParallelTopK(KEY, k=1_000, memory_rows=1_000,
                                workers=4, use_threads=False)
        list(operator.execute(iter(rows)))
        eliminated = sum(s.rows_eliminated_on_arrival
                         for s in operator.worker_stats)
        assert eliminated > 10_000

    def test_shared_filter_spills_much_less_than_unfiltered(self):
        rows = uniform(40_000, seed=6)
        operator = ParallelTopK(KEY, k=1_000, memory_rows=1_000,
                                workers=4, use_threads=False)
        list(operator.execute(iter(rows)))
        assert operator.total_rows_spilled < len(rows) // 2

    def test_cutoff_exchange_mode_correct_but_weaker(self):
        rows = uniform(40_000, seed=7)
        shared = ParallelTopK(KEY, k=1_000, memory_rows=1_000,
                              workers=4, use_threads=False)
        out_shared = list(shared.execute(iter(rows)))
        exchanged = ParallelTopK(KEY, k=1_000, memory_rows=1_000,
                                 workers=4, use_threads=False,
                                 exchange_interval_rows=2_000)
        out_exchanged = list(exchanged.execute(iter(rows)))
        assert out_shared == out_exchanged == sorted(rows)[:1_000]
        # Stale local cutoffs retain more rows (the paper's prediction).
        assert (exchanged.total_rows_spilled
                >= shared.total_rows_spilled)

    def test_worker_stats_cover_entire_input(self):
        rows = uniform(9_999, seed=8)
        operator = ParallelTopK(KEY, k=700, memory_rows=800, workers=3,
                                use_threads=False)
        list(operator.execute(iter(rows)))
        consumed = sum(s.rows_consumed for s in operator.worker_stats)
        assert consumed == 9_999
