"""Cross-module integration tests: full pipelines, both storage backends."""

import random

import pytest

from repro.core.policies import TargetBucketsPolicy
from repro.core.topk import HistogramTopK
from repro.datagen.distributions import LOGNORMAL, UNIFORM, fal
from repro.datagen.workloads import lineitem_workload
from repro.engine.session import Database
from repro.extensions.offset import Paginator
from repro.rows.lineitem import LINEITEM_SCHEMA, generate_lineitem
from repro.rows.sortspec import SortColumn, SortSpec
from repro.storage.spill import DiskSpillBackend, SpillManager

KEY = lambda row: row[0]  # noqa: E731


class TestDiskBackedPipeline:
    """The full algorithm with real files on disk."""

    def test_histogram_topk_on_disk(self, tmp_path, rng):
        rows = [(rng.random(),) for _ in range(20_000)]
        with SpillManager(backend=DiskSpillBackend(str(tmp_path))) as spill:
            operator = HistogramTopK(KEY, 2_000, 500, spill_manager=spill)
            out = list(operator.execute(iter(rows)))
            assert out == sorted(rows)[:2_000]
            assert spill.stats.bytes_written > 0

    def test_disk_and_memory_backends_agree(self, tmp_path, rng):
        rows = [(rng.random(),) for _ in range(10_000)]
        results = []
        spills = []
        for backend in (None, DiskSpillBackend(str(tmp_path))):
            with SpillManager(backend=backend) as spill:
                operator = HistogramTopK(KEY, 1_500, 400,
                                         spill_manager=spill)
                results.append(list(operator.execute(iter(rows))))
                spills.append(spill.stats.rows_spilled)
        assert results[0] == results[1]
        assert spills[0] == spills[1]

    def test_lineitem_payload_round_trips_disk(self, tmp_path):
        rows = list(generate_lineitem(3_000, seed=5))
        spec = SortSpec(LINEITEM_SCHEMA, ["L_ORDERKEY"])
        with SpillManager(backend=DiskSpillBackend(str(tmp_path))) as spill:
            operator = HistogramTopK(spec, 800, 200, spill_manager=spill)
            out = list(operator.execute(iter(rows)))
        expected = sorted(rows, key=spec.key)[:800]
        assert [r[0] for r in out] == [r[0] for r in expected]
        # Full payload must survive serialization, not just the key.
        assert out[0] in rows


class TestMultiColumnSort:
    def test_external_topk_on_composite_order(self, rng):
        rows = [(rng.randrange(50), rng.random(), f"p{rng.randrange(9)}")
                for _ in range(15_000)]
        from repro.rows.schema import Column, ColumnType, Schema
        schema = Schema([
            Column("a", ColumnType.INT64),
            Column("b", ColumnType.FLOAT64),
            Column("c", ColumnType.STRING),
        ])
        spec = SortSpec(schema, [SortColumn("a", ascending=False), "b"])
        operator = HistogramTopK(spec, 2_000, 300)
        out = list(operator.execute(iter(rows)))
        assert out == sorted(rows, key=lambda r: (-r[0], r[1]))[:2_000]


class TestWorkloadToSqlParity:
    """The raw operator and the SQL engine must agree exactly."""

    def test_operator_vs_sql(self):
        workload = lineitem_workload(4_000, 900, 250, seed=11)
        operator = HistogramTopK(workload.sort_spec, workload.k,
                                 workload.memory_rows)
        direct = list(operator.execute(workload.make_input()))

        database = Database(memory_rows=workload.memory_rows)
        database.register_table("LINEITEM", LINEITEM_SCHEMA,
                                list(workload.make_input()))
        via_sql = database.sql(
            "SELECT * FROM LINEITEM ORDER BY L_ORDERKEY LIMIT 900")
        assert [r[0] for r in via_sql.rows] == [r[0] for r in direct]


class TestDistributionRobustness:
    @pytest.mark.parametrize("distribution",
                             [UNIFORM, LOGNORMAL, fal(0.5), fal(1.5)])
    def test_all_distributions_filter_effectively(self, distribution):
        keys = distribution.sample(30_000, seed=3)
        rows = [(float(key),) for key in keys]
        operator = HistogramTopK(KEY, 2_000, 500)
        out = list(operator.execute(iter(rows)))
        assert out == sorted(rows)[:2_000]
        # The distribution must not break filtering (Figure 3's claim).
        assert operator.stats.io.rows_spilled < 15_000


class TestPagingOverSql:
    def test_paginator_matches_sql_offset_pages(self):
        rng = random.Random(17)
        rows = [(rng.random(),) for _ in range(5_000)]
        from repro.rows.schema import single_key_schema
        schema = single_key_schema()
        database = Database(memory_rows=300)
        database.register_table("T", schema, rows)
        paginator = Paginator(lambda: iter(rows),
                              SortSpec(schema, ["key"]),
                              page_size=100, memory_rows=300)
        for page_number in (0, 2, 7):
            offset = page_number * 100
            via_sql = database.sql(
                f"SELECT * FROM T ORDER BY key LIMIT 100 OFFSET {offset}")
            assert paginator.page(page_number) == via_sql.rows


class TestStatsConsistency:
    def test_spill_plus_eliminated_covers_consumed(self, rng):
        rows = [(rng.random(),) for _ in range(25_000)]
        operator = HistogramTopK(KEY, 2_000, 500,
                                 sizing_policy=TargetBucketsPolicy(
                                     capped=False))
        list(operator.execute(iter(rows)))
        stats = operator.stats
        # Every consumed row was either eliminated somewhere or spilled.
        assert (stats.rows_eliminated + stats.io.rows_spilled
                == stats.rows_consumed)

    def test_bytes_written_match_row_size_accounting(self, rng):
        rows = [(rng.random(),) for _ in range(8_000)]
        spill = SpillManager(row_size=lambda _row: 100)
        operator = HistogramTopK(KEY, 1_000, 300, spill_manager=spill)
        list(operator.execute(iter(rows)))
        assert (spill.stats.bytes_written
                == spill.stats.rows_spilled * 100)
