"""Tests for the full external merge sort operator."""

import pytest

from repro.errors import ConfigurationError
from repro.sorting.external_sort import ExternalSort

KEY = lambda row: row[0]  # noqa: E731


class TestExternalSort:
    def test_unknown_run_generation_rejected(self, spill):
        with pytest.raises(ConfigurationError):
            ExternalSort(KEY, 10, spill, run_generation="bogosort")

    @pytest.mark.parametrize("algorithm",
                             ["replacement_selection", "quicksort"])
    def test_full_sort_correct(self, spill, rng, algorithm):
        rows = [(rng.random(),) for _ in range(3_000)]
        sorter = ExternalSort(KEY, 128, spill, run_generation=algorithm)
        assert list(sorter.sort(rows)) == sorted(rows)

    def test_limit_and_offset(self, spill, rng):
        rows = [(rng.random(),) for _ in range(1_000)]
        sorter = ExternalSort(KEY, 64, spill)
        out = list(sorter.sort(rows, limit=10, offset=5))
        assert out == sorted(rows)[5:15]

    def test_entire_input_is_spilled(self, spill, rng):
        """The defining cost of the traditional approach."""
        rows = [(rng.random(),) for _ in range(2_000)]
        sorter = ExternalSort(KEY, 100, spill)
        list(sorter.sort(rows, limit=5))
        assert spill.stats.rows_spilled == 2_000

    def test_stats_count_consumed_and_output(self, spill, rng):
        rows = [(rng.random(),) for _ in range(500)]
        sorter = ExternalSort(KEY, 50, spill)
        list(sorter.sort(rows, limit=7))
        assert sorter.stats.rows_consumed == 500
        assert sorter.stats.rows_output == 7

    def test_replacement_selection_produces_fewer_runs(self, rng):
        from repro.storage.spill import SpillManager

        rows = [(rng.random(),) for _ in range(5_000)]
        with SpillManager() as spill_rs, SpillManager() as spill_qs:
            rs = ExternalSort(KEY, 100, spill_rs,
                              run_generation="replacement_selection")
            list(rs.sort(list(rows)))
            qs = ExternalSort(KEY, 100, spill_qs,
                              run_generation="quicksort")
            list(qs.sort(list(rows)))
            assert len(rs.runs) < len(qs.runs)

    def test_fan_in_limited_merge_still_correct(self, spill, rng):
        rows = [(rng.random(),) for _ in range(2_000)]
        sorter = ExternalSort(KEY, 50, spill, fan_in=4)
        assert list(sorter.sort(rows)) == sorted(rows)

    def test_run_size_limit_respected(self, spill, rng):
        rows = [(rng.random(),) for _ in range(1_000)]
        sorter = ExternalSort(KEY, 100, spill, run_size_limit=80)
        list(sorter.sort(rows))
        assert all(run.row_count <= 80 for run in sorter.runs)

    def test_empty_input(self, spill):
        sorter = ExternalSort(KEY, 10, spill)
        assert list(sorter.sort([])) == []
