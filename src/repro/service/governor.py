"""Global memory arbitration across concurrent queries.

The paper's setting (Section 2.1) is a busy server where every sort
operator gets a small, *fixed* slice of RAM.  With one query at a time
that slice is a constructor argument; with a concurrent service it must
be arbitrated.  The :class:`MemoryGovernor` owns the global row budget
and hands out :class:`MemoryLease` grants: under light load a query gets
its full request, under pressure the grant shrinks — the top-k operator
then simply switches to (or stays in) the external regime and spills
earlier, which the histogram filter keeps cheap, instead of the query
failing with an out-of-memory error.  This mirrors the degradation the
external-sorting literature recommends: admission keeps working, each
admitted query just runs with less memory.

Leases are context managers; release is idempotent.
"""

from __future__ import annotations

import threading
from repro.errors import ConfigurationError


class MemoryLease:
    """A granted slice of the global memory budget, in rows.

    Attributes:
        rows: Rows actually granted (pass as the query's memory budget).
        requested_rows: Rows originally asked for.
        shrunk: Whether pressure shrank the grant below the request.
    """

    __slots__ = ("rows", "requested_rows", "shrunk", "_governor",
                 "_released")

    def __init__(self, governor: "MemoryGovernor", rows: int,
                 requested_rows: int):
        self._governor = governor
        self.rows = rows
        self.requested_rows = requested_rows
        self.shrunk = rows < requested_rows
        self._released = False

    def release(self) -> None:
        """Return the granted rows to the governor (idempotent)."""
        if not self._released:
            self._released = True
            self._governor._release(self.rows)

    def __enter__(self) -> "MemoryLease":
        return self

    def __exit__(self, *_exc) -> None:
        self.release()

    def __repr__(self) -> str:
        return (f"MemoryLease(rows={self.rows}, "
                f"requested={self.requested_rows}, shrunk={self.shrunk})")


class MemoryGovernor:
    """Arbitrates a global row budget across in-flight queries.

    Grant policy, evaluated under the governor's lock:

    * a request is granted in full while it fits in the unleased
      remainder of ``total_rows``;
    * otherwise the grant shrinks to the remainder (a *lease shrink* —
      the query will spill earlier, not fail);
    * the grant never goes below ``min_lease_rows`` — when even that
      does not fit, the governor overcommits by the floor amount rather
      than deadlock admission.  The floor keeps run generation sensible
      (a 1-row sort heap degenerates).

    Args:
        total_rows: Global memory budget shared by all queries, in rows.
        min_lease_rows: Smallest grant ever issued (overcommit floor).
    """

    def __init__(self, total_rows: int, min_lease_rows: int = 64):
        if total_rows <= 0:
            raise ConfigurationError("total_rows must be positive")
        if min_lease_rows <= 0:
            raise ConfigurationError("min_lease_rows must be positive")
        self.total_rows = total_rows
        self.min_lease_rows = min(min_lease_rows, total_rows)
        self._lock = threading.Lock()
        self._leased = 0
        self._active = 0
        #: Observability counters (read under the lock via snapshot()).
        self.peak_leased_rows = 0
        self.peak_active_leases = 0
        self.shrinks = 0
        self.overcommits = 0

    def lease(self, requested_rows: int) -> MemoryLease:
        """Grant a lease of at most ``requested_rows`` rows.

        Never blocks and never fails: under pressure the grant shrinks
        (possibly down to the ``min_lease_rows`` floor).
        """
        if requested_rows <= 0:
            raise ConfigurationError("requested_rows must be positive")
        with self._lock:
            available = self.total_rows - self._leased
            granted = min(requested_rows, max(available,
                                              self.min_lease_rows))
            if granted < requested_rows:
                self.shrinks += 1
            if granted > available:
                self.overcommits += 1
            self._leased += granted
            self._active += 1
            self.peak_leased_rows = max(self.peak_leased_rows, self._leased)
            self.peak_active_leases = max(self.peak_active_leases,
                                          self._active)
            return MemoryLease(self, granted, requested_rows)

    def _release(self, rows: int) -> None:
        with self._lock:
            self._leased -= rows
            self._active -= 1

    @property
    def leased_rows(self) -> int:
        """Rows currently out on lease."""
        with self._lock:
            return self._leased

    @property
    def active_leases(self) -> int:
        """Leases currently outstanding."""
        with self._lock:
            return self._active

    def describe(self) -> str:
        """Human-readable budget summary."""
        with self._lock:
            return (f"leased {self._leased}/{self.total_rows} rows across "
                    f"{self._active} leases (peak {self.peak_leased_rows} "
                    f"rows/{self.peak_active_leases} leases, "
                    f"shrinks={self.shrinks}, "
                    f"overcommits={self.overcommits})")
