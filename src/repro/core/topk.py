"""The adaptive histogram-guided top-k operator (the paper's Algorithm 1).

Behavior by regime:

* **Output fits in memory** (``k + offset`` rows fit in the operator's
  budget): behaves exactly like the in-memory priority-queue algorithm of
  Section 2.3 — the k-th smallest key seen so far is the cutoff and almost
  the entire input is eliminated on arrival.  No a-priori algorithm choice
  is needed; this operator *is* both algorithms.
* **Output exceeds memory**: run generation starts and the cutoff filter
  logic builds a concise model of the input from per-run histograms.  Rows
  are tested against the cutoff key twice — on arrival (Algorithm 1 line 4)
  and again immediately before being spilled (line 11), because the cutoff
  may have sharpened while the row sat in memory.  When the input is
  exhausted, runs are merged (lowest keys first) until k rows are produced.

The operator is deliberately built from the same substrates as the
baselines (run generators, merger, spill manager) so that measured
differences isolate the contribution: eager input filtering.
"""

from __future__ import annotations

import heapq
import itertools
import logging
import time
from typing import Any, Callable, Iterable, Iterator

try:  # numpy powers the vectorized batch admission; optional.
    import numpy as np
except ImportError:  # pragma: no cover - the CI image always has numpy
    np = None

from repro.core.cutoff import CutoffFilter, _ReverseKey
from repro.core.histogram import RunHistogramBuilder
from repro.core.rank_index import RankIndex
from repro.core.policies import SizingPolicy, TargetBucketsPolicy
from repro.errors import ConfigurationError, StaleCutoffSeed
from repro.obs.timeline import CutoffTimeline
from repro.obs.trace import NULL_TRACER
from repro.rows.batch import RowBatch, flatten, numeric_key_column
from repro.rows.sortspec import SortSpec
from repro.sorting.keycodec import compile_keycodec
from repro.sorting.merge import Merger, MergePolicy
from repro.sorting.quicksort_runs import QuicksortRunGenerator
from repro.sorting.replacement_selection import (
    ReplacementSelectionRunGenerator,
)
from repro.sorting.runs import SortedRun
from repro.storage.spill import SpillManager
from repro.storage.stats import OperatorStats

logger = logging.getLogger(__name__)


class HistogramTopK:
    """Top-k operator with histogram-guided eager input filtering.

    Args:
        sort_key: A :class:`~repro.rows.sortspec.SortSpec` or a plain
            key-extraction callable.
        k: Requested output row count (``LIMIT``).
        memory_rows: Operator memory capacity in rows.
        spill_manager: Secondary-storage substrate; a private in-memory one
            is created when omitted.
        sizing_policy: Histogram sizing policy (default: the production
            target of ~50 buckets per run).
        offset: Rows to skip before producing output (``OFFSET``); the
            filter preserves ``offset + k`` rows (Section 2.7).
        run_generation: ``"replacement_selection"`` (production default) or
            ``"quicksort"`` (the analysis model / PostgreSQL style).
        run_size_limit: Per-run row cap; defaults to ``offset + k`` per the
            paper's production implementation.  Pass ``None`` explicitly
            for unlimited runs.
        fan_in: Optional merge fan-in limit.
        merge_policy: Intermediate merge-step selection policy.
        histogram_bucket_capacity: Bucket-queue budget before consolidation
            (models the paper's 1 MB histogram allocation).
        expected_run_rows: Best-effort run-length estimate handed to the
            sizing policy; derived from the configuration when omitted.
        double_filter: When True (the algorithm as published), rows are
            re-checked against the cutoff right before being spilled
            (Algorithm 1 line 11) in addition to the arrival check (line
            4).  False disables the spill-time re-check — an ablation
            knob quantifying what the second filter site contributes.
        build_rank_index: ``None`` (default) builds the Section 4.1 rank
            index automatically when an offset is requested; ``True``
            forces it (e.g. for a paginator that merges with offsets
            later); ``False`` disables it.
        cutoff_seed: Optional initial cutoff bound (cutoff reuse).  The
            caller asserts that at least ``k + offset`` input rows sort at
            or below this key — typically the :attr:`final_cutoff` of an
            earlier run over the same table version and predicates.  The
            external regime then eliminates rows from the very first one
            instead of waiting for histogram coverage.  If the assertion
            turns out false (a stale or over-tight seed), the operator
            detects the underflow once the input is exhausted and raises
            :class:`~repro.errors.StaleCutoffSeed` rather than emit too
            few rows; replay-capable callers re-execute without the seed.
        memory_bytes: Optional byte budget on top of ``memory_rows``.
            With variable-size rows the row-count prediction can be
            wrong in either direction — the exact robustness problem
            Section 2.3 raises for the pure priority-queue algorithm.
            When set, the operator adapts at *runtime*: it starts in the
            priority-queue regime and switches to histogram-filtered run
            generation the moment resident bytes exceed the budget.
        row_size: Byte estimator used with ``memory_bytes``.
        tracer: Optional :class:`repro.obs.trace.Tracer`.  When enabled,
            execution phases open spans, run lifecycle and cutoff
            refinements become trace events, and the sharpening
            trajectory is recorded into :attr:`timeline`.  ``None`` (the
            default) uses the no-op tracer: untraced executions pay a
            single attribute-load-and-branch per *phase*, never per row.
        key_encoding: ``"auto"`` (default), ``"ovc"`` or ``"tuple"``.
            Controls the comparison substrate: ``"ovc"`` forces
            order-preserving binary keys plus offset-value coded merging
            (:mod:`repro.sorting.keycodec`, :mod:`repro.sorting.ovc`) and
            raises :class:`~repro.errors.ConfigurationError` when the
            sort spec cannot be encoded; ``"tuple"`` forces the classic
            tuple keys; ``"auto"`` picks the binary encoding exactly when
            the spec's tuple keys would be composite Python objects.
            Output rows and ``rows_spilled`` are identical either way —
            the encoding is order- and equality-preserving — only the
            comparison costs differ.  Note that ``cutoff_seed`` and
            :attr:`final_cutoff` live in whichever key space is active,
            so seeds must come from an execution with the same encoding.
        late_materialization: Merge spilled runs as key-only *skeletons*
            (``(file, page, slot)`` references) and re-read the payload
            pages of the ≤ k winners in a final stitch step.  Effective
            only when the binary key codec is active and every run file's
            storage supports skeleton reads (a disk backend whose page
            codec writes key/payload-split pages); silently falls back to
            eager materialization otherwise.  Output is identical either
            way.
    """

    _AUTO = object()

    def __init__(
        self,
        sort_key: SortSpec | Callable[[tuple], Any],
        k: int,
        memory_rows: int,
        spill_manager: SpillManager | None = None,
        sizing_policy: SizingPolicy | None = None,
        offset: int = 0,
        run_generation: str = "replacement_selection",
        run_size_limit: int | None | object = _AUTO,
        fan_in: int | None = None,
        merge_policy: MergePolicy = MergePolicy.LOWEST_KEYS_FIRST,
        histogram_bucket_capacity: int | None = None,
        expected_run_rows: int | None = None,
        double_filter: bool = True,
        memory_bytes: int | None = None,
        row_size: Callable[[tuple], int] | None = None,
        build_rank_index: bool | None = None,
        trace_cutoff: bool = False,
        stats: OperatorStats | None = None,
        cutoff_seed: Any = None,
        tracer=None,
        merge_read_ahead: int = 2,
        key_encoding: str = "auto",
        histogram_sink: Callable[[Any], None] | None = None,
        cutoff_listener: Callable[[Any], None] | None = None,
        late_materialization: bool = False,
    ):
        if k <= 0:
            raise ConfigurationError("k must be positive")
        if offset < 0:
            raise ConfigurationError("offset must be non-negative")
        if memory_rows <= 0:
            raise ConfigurationError("memory_rows must be positive")
        if run_generation not in ("replacement_selection", "quicksort"):
            raise ConfigurationError(
                f"unknown run generation {run_generation!r}")
        self.sort_key = (sort_key.key if isinstance(sort_key, SortSpec)
                         else sort_key)
        #: The originating spec, when one was given — the batch path uses
        #: it to vectorize key extraction (single numeric column only).
        self.sort_spec = sort_key if isinstance(sort_key, SortSpec) else None
        self._batch_key = (numeric_key_column(self.sort_spec)
                           if self.sort_spec is not None else None)
        if key_encoding not in ("auto", "ovc", "tuple"):
            raise ConfigurationError(
                f"unknown key encoding {key_encoding!r} "
                "(expected 'auto', 'ovc' or 'tuple')")
        #: The compiled binary key codec, or ``None`` when the operator
        #: runs on tuple keys.  ``"auto"`` engages the codec exactly when
        #: the spec's tuple keys are composite Python objects (multiple
        #: columns, nullable, or a wrapped descending column) — the cases
        #: where byte-string comparison beats tuple comparison; a bare
        #: numeric key stays a tuple key so the vectorized batch admission
        #: keeps working.  With a codec, ``sort_key`` *is* the encoder:
        #: every key in the operator (runs, histograms, cutoff, seeds) is
        #: an order-preserving byte string, and ``cutoff_seed`` /
        #: :attr:`final_cutoff` live in that byte key space.
        self.key_codec = None
        if key_encoding != "tuple":
            codec = (compile_keycodec(self.sort_spec)
                     if self.sort_spec is not None else None)
            if key_encoding == "ovc":
                if codec is None:
                    raise ConfigurationError(
                        "key_encoding='ovc' requires a SortSpec whose "
                        "column types all have binary key encoders")
                self.key_codec = codec
            elif codec is not None and codec.preferred:
                self.key_codec = codec
        if self.key_codec is not None:
            self.sort_key = self.key_codec.encode
            self._batch_key = None
        self.k = k
        self.offset = offset
        self.memory_rows = memory_rows
        self.spill_manager = spill_manager or SpillManager()
        self.sizing_policy = sizing_policy or TargetBucketsPolicy(capped=False)
        self.run_generation = run_generation
        self.fan_in = fan_in
        self.merge_policy = merge_policy
        #: Pages of background prefetch per run during merging
        #: (real-I/O spill backends only; ``0`` disables it).
        self.merge_read_ahead = merge_read_ahead
        self.double_filter = double_filter
        if memory_bytes is not None and memory_bytes <= 0:
            raise ConfigurationError("memory_bytes must be positive")
        self.memory_bytes = memory_bytes
        self.row_size = row_size or (lambda row: 16 + 8 * len(row))
        self.late_materialization = late_materialization
        self.switched_to_external = False
        self.stats = stats or OperatorStats()
        self.stats.io = self.spill_manager.stats

        needed = self.k + self.offset
        if run_size_limit is self._AUTO:
            self.run_size_limit: int | None = needed
        else:
            self.run_size_limit = run_size_limit  # may be None

        if expected_run_rows is not None:
            self.expected_run_rows = expected_run_rows
        else:
            base = (memory_rows if run_generation == "quicksort"
                    else 2 * memory_rows)
            if self.run_size_limit is not None:
                base = min(base, self.run_size_limit)
            self.expected_run_rows = max(1, base)

        #: When tracing, every cutoff refinement is recorded as
        #: ``(rows_consumed_so_far, new_cutoff_key)`` — the live version
        #: of the paper's Table 1 trajectory.
        self.cutoff_trace: list[tuple[int, Any]] = []
        self._trace_cutoff = trace_cutoff
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: The ``rows_seen → cutoff key`` event stream; built only when a
        #: live tracer is attached (``None`` on untraced executions).
        self.timeline: CutoffTimeline | None = (
            CutoffTimeline() if self.tracer.enabled else None)
        #: Optional observer of every admission-bound refinement, in the
        #: operator's active key space — the cutoff-pushdown channel: a
        #: pre-join :class:`~repro.engine.operators.CutoffPushdownFilter`
        #: subscribes so input rows are dropped *below* the join.  Both
        #: regimes publish (the external cutoff filter's refinements and
        #: the in-memory heap's live bound).
        self.cutoff_listener = cutoff_listener
        record = (self._record_refinement
                  if trace_cutoff or self.timeline is not None else None)
        if record is not None and cutoff_listener is not None:
            def on_refine(key, _record=record, _listen=cutoff_listener):
                _record(key)
                _listen(key)
        else:
            on_refine = record if record is not None else cutoff_listener
        self.cutoff_filter = CutoffFilter(
            k=needed, bucket_capacity=histogram_bucket_capacity,
            on_refine=on_refine)
        # Seeds live in the active key space (byte strings with a codec,
        # tuples/raw values without).  A cost-based planner may choose a
        # different encoding for a repeat of the query that produced the
        # seed, so a space-mismatched seed is dropped rather than letting
        # ``bytes``-vs-tuple comparisons blow up mid-scan.
        if cutoff_seed is not None \
                and isinstance(cutoff_seed, bytes) \
                != (self.key_codec is not None):
            cutoff_seed = None
        self.cutoff_seed = cutoff_seed
        if cutoff_seed is not None:
            self.cutoff_filter.seed(cutoff_seed)
        #: Optional observer of every emitted histogram bucket — the
        #: statistics-catalog harvest hook (zero-cost when ``None``).
        #: Buckets are in *normalized key space*: whatever ``sort_key``
        #: produces (tuple keys or encoded byte keys); the harvester is
        #: responsible for mapping keys back to column values.
        self.histogram_sink = histogram_sink
        self._last_output_row: tuple | None = None
        self.build_rank_index = build_rank_index
        self.rank_index: RankIndex | None = None
        self.offset_rows_skipped = 0
        self.runs: list[SortedRun] = []

    # -- public API ---------------------------------------------------------

    @property
    def output_fits_in_memory(self) -> bool:
        """Whether the priority-queue regime applies."""
        return self.k + self.offset <= self.memory_rows

    @property
    def final_cutoff(self) -> Any:
        """The exact cutoff this execution achieved, or ``None``.

        When the full ``k`` output rows were produced (and consumed), the
        last output row has overall rank ``k + offset``, so its key is a
        bound known to cover ``k + offset`` input rows — the tightest seed
        a repeat of this query (same table version and predicates) can be
        given via ``cutoff_seed``.  ``None`` when the output fell short or
        was not fully consumed.
        """
        if self._last_output_row is not None \
                and self.stats.rows_output >= self.k:
            return self.sort_key(self._last_output_row)
        return None

    def execute(self, rows: Iterable[tuple]) -> Iterator[tuple]:
        """Consume ``rows`` and yield the top ``k`` rows (after ``offset``).

        Output rows appear in the requested sort order.
        """
        if self.output_fits_in_memory:
            logger.debug("k+offset=%d fits in %d memory rows: "
                         "priority-queue regime", self.k + self.offset,
                         self.memory_rows)
            output = self._execute_in_memory(iter(rows))
        else:
            logger.debug("k+offset=%d exceeds %d memory rows: "
                         "histogram-filtered external regime",
                         self.k + self.offset, self.memory_rows)
            output = self._execute_external(iter(rows))
        return self._emit(output)

    def execute_batches(self, batches: Iterable[RowBatch]) -> Iterator[tuple]:
        """Batch-at-a-time :meth:`execute`: same algorithm, same output.

        The arrival-side cutoff test (Algorithm 1 line 4) is applied to a
        whole :class:`~repro.rows.batch.RowBatch` at once — one vectorized
        comparison when the sort key is a single numeric column — instead
        of one Python-level call per surviving row.  Any batch whose key
        column cannot be vectorized falls back to the row-at-a-time test;
        a configured byte budget (per-row size accounting) routes the
        whole execution through the row path.
        """
        if self.memory_bytes is not None:
            return self.execute(flatten(batches))
        if self.output_fits_in_memory:
            output = self._execute_in_memory_batches(iter(batches))
        else:
            output = self._execute_external_batches(iter(batches))
        return self._emit(output)

    def _emit(self, output: Iterator[tuple]) -> Iterator[tuple]:
        """Count output rows and remember the last one (cutoff reuse)."""
        row = None
        for row in output:
            self.stats.rows_output += 1
            yield row
        self._last_output_row = row

    def _batch_key_array(self, batch: RowBatch):
        """Normalized key column of ``batch``, or ``None`` → row path."""
        if self._batch_key is None:
            return None
        index, negate = self._batch_key
        array = batch.key_array(index)
        if array is None:
            return None
        return -array if negate else array

    # -- in-memory regime ----------------------------------------------------

    def _execute_in_memory(self, rows: Iterator[tuple]) -> Iterator[tuple]:
        """Priority-queue top-k (Section 2.3) for outputs that fit.

        With a byte budget configured, resident bytes are tracked and a
        budget overrun triggers a live switch to the external regime —
        the adaptivity that makes an a-priori algorithm choice (and its
        failure modes on variable-size rows) unnecessary.
        """
        needed = self.k + self.offset
        sort_key = self.sort_key
        row_size = self.row_size
        track_bytes = self.memory_bytes is not None
        stats = self.stats
        listener = self.cutoff_listener
        # Max-heap of the ``needed`` smallest keys seen so far.
        heap: list[tuple[_ReverseKey, int, tuple]] = []
        bytes_used = 0
        seq = 0
        for row in rows:
            stats.rows_consumed += 1
            key = sort_key(row)
            if len(heap) < needed:
                seq += 1
                heapq.heappush(heap, (_ReverseKey(key), seq, row))
                if track_bytes:
                    bytes_used += row_size(row)
                if listener is not None and len(heap) == needed:
                    listener(heap[0][0].key)
            else:
                stats.cutoff_comparisons += 1
                if key < heap[0][0].key:
                    seq += 1
                    if track_bytes:
                        bytes_used += row_size(row) \
                            - row_size(heap[0][2])
                    heapq.heapreplace(heap, (_ReverseKey(key), seq, row))
                    if listener is not None:
                        listener(heap[0][0].key)
                stats.rows_eliminated_on_arrival += 1
            if track_bytes and bytes_used > self.memory_bytes:
                # The output no longer fits: hand everything resident
                # plus the rest of the stream to the external regime.
                logger.info(
                    "priority queue exceeded %d bytes at %d resident "
                    "rows: switching to the external regime",
                    self.memory_bytes, len(heap))
                self.switched_to_external = True
                resident = [entry[2] for entry in heap]
                # Resident rows were already counted on their first
                # arrival; compensate before they re-enter the pipeline.
                stats.rows_consumed -= len(resident)
                yield from self._execute_external(
                    itertools.chain(resident, rows))
                return
        survivors = sorted(((entry[0].key, entry[1], entry[2])
                            for entry in heap),
                           key=lambda item: (item[0], item[1]))
        for _key, _seq, row in survivors[self.offset:]:
            yield row

    def _execute_in_memory_batches(
            self, batches: Iterator[RowBatch]) -> Iterator[tuple]:
        """Priority-queue regime over batches.

        Identical to :meth:`_execute_in_memory` (including its counter
        accounting: every arrival after the heap is full registers one
        comparison and one elimination — a replaced row eliminates its
        victim), but once the heap is full each batch is reduced to its
        replacement candidates with a single vectorized comparison
        against the heap's current cutoff.
        """
        needed = self.k + self.offset
        sort_key = self.sort_key
        stats = self.stats
        listener = self.cutoff_listener
        heap: list[tuple[_ReverseKey, int, tuple]] = []
        seq = 0
        for batch in batches:
            rows = batch.rows
            stats.rows_consumed += len(rows)
            index = 0
            if len(heap) < needed:
                while index < len(rows) and len(heap) < needed:
                    row = rows[index]
                    index += 1
                    seq += 1
                    heapq.heappush(heap,
                                   (_ReverseKey(sort_key(row)), seq, row))
                if index >= len(rows):
                    if listener is not None and len(heap) == needed:
                        listener(heap[0][0].key)
                    continue
            remaining = len(rows) - index
            stats.cutoff_comparisons += remaining
            stats.rows_eliminated_on_arrival += remaining
            keys = self._batch_key_array(batch)
            if keys is not None:
                # Rows at or above the batch-start cutoff can never enter
                # the heap (the cutoff only tightens); survivors re-check
                # against the live cutoff exactly like the row path.
                top_key = heap[0][0].key
                for i in np.flatnonzero(keys[index:] < top_key):
                    row = rows[index + int(i)]
                    key = sort_key(row)
                    if key < heap[0][0].key:
                        seq += 1
                        heapq.heapreplace(heap,
                                          (_ReverseKey(key), seq, row))
            else:
                for row in rows[index:] if index else rows:
                    key = sort_key(row)
                    if key < heap[0][0].key:
                        seq += 1
                        heapq.heapreplace(heap,
                                          (_ReverseKey(key), seq, row))
            # Downstream sees this batch's consequences only after the
            # loop yields control, so one publication per batch is as
            # sharp as per-replacement publication.
            if listener is not None:
                listener(heap[0][0].key)
        survivors = sorted(((entry[0].key, entry[1], entry[2])
                            for entry in heap),
                           key=lambda item: (item[0], item[1]))
        for _key, _seq, row in survivors[self.offset:]:
            yield row

    # -- external regime -----------------------------------------------------

    def _make_run_generator(self, on_spill, on_run_closed):
        cls = (QuicksortRunGenerator if self.run_generation == "quicksort"
               else ReplacementSelectionRunGenerator)
        return cls(
            sort_key=self.sort_key,
            memory_rows=self.memory_rows,
            spill_manager=self.spill_manager,
            run_size_limit=self.run_size_limit,
            spill_filter=self._spill_eliminate if self.double_filter
            else None,
            on_spill=on_spill,
            on_run_closed=on_run_closed,
            memory_bytes=self.memory_bytes,
            row_size=self.row_size if self.memory_bytes is not None
            else None,
            stats=self.stats,
            compute_codes=self.key_codec is not None,
        )

    def _spill_eliminate(self, key: Any) -> bool:
        """Algorithm 1 line 11: re-check a row right before spilling it."""
        return self.cutoff_filter.eliminate(key)

    def _record_refinement(self, new_cutoff: Any) -> None:
        if self._trace_cutoff:
            self.cutoff_trace.append((self.stats.rows_consumed, new_cutoff))
        if self.timeline is not None:
            self.timeline.record(self.stats.rows_consumed, new_cutoff)
            self.tracer.event("cutoff.refine",
                              rows_seen=self.stats.rows_consumed,
                              cutoff_key=new_cutoff)

    def _external_machinery(self):
        """Run generator wired to per-run histograms → the cutoff filter.

        Shared by the row and batch external paths: both feed the same
        generator, whose spill callbacks grow the histogram model that
        sharpens the cutoff while runs are still being written.
        """
        want_index = (self.build_rank_index
                      if self.build_rank_index is not None
                      else bool(self.offset))
        if want_index and self.rank_index is None:
            # Deep offsets benefit from rank bounds (Section 4.1): keep
            # every bucket in a side index so the merge can skip pages.
            self.rank_index = RankIndex()

        def sink(bucket) -> None:
            self.cutoff_filter.insert(bucket)
            if self.rank_index is not None:
                self.rank_index.add_bucket(bucket)
            if self.histogram_sink is not None:
                self.histogram_sink(bucket)

        histogram_builder = RunHistogramBuilder(
            policy=self.sizing_policy,
            expected_run_rows=self.expected_run_rows,
            sink=sink,
        )

        def on_spill(key: Any, _row: tuple) -> None:
            histogram_builder.add(key)

        def on_run_closed(run: SortedRun) -> None:
            histogram_builder.close()
            if self.rank_index is not None:
                self.rank_index.end_run(run.row_count)
            if self.tracer.enabled:
                self.tracer.event("run.closed", run_id=run.run_id,
                                  rows=run.row_count)

        return self._make_run_generator(on_spill, on_run_closed)

    def _external_finish(self, generator) -> Iterator[tuple]:
        """Close run generation, validate any seed, and merge the runs."""
        self.runs = generator.finish()
        if self.cutoff_seed is not None:
            # A seeded bound is an *assertion* the filter cannot check up
            # front.  Here it becomes checkable: if fewer rows survived
            # than the output needs while the seed eliminated input, the
            # seed was stale/over-tight and the output would be wrong.
            # (Without a seed this cannot happen — an established cutoff
            # always has >= k+offset spilled rows at or below it.)
            survivors = sum(run.row_count for run in self.runs)
            if (survivors < self.k + self.offset
                    and self.stats.rows_eliminated > 0):
                raise StaleCutoffSeed(
                    f"seeded cutoff {self.cutoff_seed!r} left only "
                    f"{survivors} rows for a top-{self.k}"
                    f"{f'+{self.offset}' if self.offset else ''} output; "
                    f"re-execute without the seed")
        # Late materialization applies when every run file can deliver
        # key-only skeletons: original run files are flipped to skeleton
        # reads and retained through the merge (intermediate runs hold
        # references into them), then the stitch resolves the winners
        # and deletes the payload files itself.
        lazy = (self.late_materialization and self.key_codec is not None
                and bool(self.runs)
                and all(run.file.supports_lazy for run in self.runs))
        payload_files = {}
        if lazy:
            payload_files = {run.file.file_id: run.file
                             for run in self.runs}
            for run in self.runs:
                run.file.lazy_reads = True
        merger = Merger(
            sort_key=self.sort_key,
            spill_manager=self.spill_manager,
            fan_in=self.fan_in,
            policy=self.merge_policy,
            tracer=self.tracer,
            read_ahead=self.merge_read_ahead,
            ovc=self.key_codec is not None,
            stats=self.stats,
            retain_files=set(payload_files) if lazy else None,
        )
        with self.tracer.span("topk.merge", runs=len(self.runs)) as span:
            output = merger.merge_topk(
                self.runs,
                self.k,
                offset=self.offset,
                cutoff=self.cutoff_filter.cutoff_key,
                rank_index=self.rank_index,
            )
            if lazy:
                output = self._stitch(output, payload_files)
            yield from output
            if self.tracer.enabled:
                span.set_attribute("rows_output", self.stats.rows_output)
        self.offset_rows_skipped = merger.offset_rows_skipped

    def _stitch(self, output: Iterator[tuple],
                payload_files: dict) -> Iterator[tuple]:
        """Resolve skeleton winners back to full rows.

        The merge delivered ``(file_id, page_index, slot)`` references;
        each referenced payload page is re-read (and fully decoded) at
        most once, then the retained original run files are deleted.
        """
        winners = list(output)
        started = time.perf_counter()
        pages: dict[tuple[int, int], Any] = {}
        rows = []
        for file_id, page_index, slot in winners:
            page = pages.get((file_id, page_index))
            if page is None:
                page = payload_files[file_id].read_page(page_index)
                pages[(file_id, page_index)] = page
            rows.append(page.rows[slot])
        self.stats.io.payload_stitch_seconds += (
            time.perf_counter() - started)
        for spill_file in payload_files.values():
            self.spill_manager.delete_file(spill_file)
        yield from rows

    def _execute_external(self, rows: Iterator[tuple]) -> Iterator[tuple]:
        """Histogram-filtered external merge sort (Algorithm 1)."""
        stats = self.stats
        sort_key = self.sort_key

        # Consume up to one memory-load first: if the whole input fits in
        # memory, no histogram or spill machinery is needed at all.
        buffered: list[tuple] = []
        buffered_bytes = 0
        exhausted = False
        while len(buffered) < self.memory_rows:
            if (self.memory_bytes is not None
                    and buffered_bytes >= self.memory_bytes):
                break
            row = next(rows, None)
            if row is None:
                exhausted = True
                break
            stats.rows_consumed += 1
            buffered.append(row)
            if self.memory_bytes is not None:
                buffered_bytes += self.row_size(row)
        if exhausted:
            buffered.sort(key=sort_key)
            yield from buffered[self.offset:self.offset + self.k]
            return

        generator = self._external_machinery()
        with self.tracer.span("topk.run_generation",
                              algorithm=self.run_generation) as span:
            generator.consume(buffered)
            del buffered

            cutoff_filter = self.cutoff_filter

            def admitted(stream: Iterator[tuple]) -> Iterator[tuple]:
                """Algorithm 1 line 4: eager elimination on arrival.

                Yields ``(key, row)`` pairs: the key computed for the
                cutoff check is handed to the run generator, which never
                computes another.
                """
                for row in stream:
                    stats.rows_consumed += 1
                    stats.cutoff_comparisons += 1
                    key = sort_key(row)
                    if cutoff_filter.eliminate(key):
                        stats.rows_eliminated_on_arrival += 1
                        continue
                    yield key, row

            generator.consume_keyed(admitted(rows))
            if self.tracer.enabled:
                span.set_attribute("rows_consumed", stats.rows_consumed)
                span.set_attribute("rows_eliminated_on_arrival",
                                   stats.rows_eliminated_on_arrival)
        yield from self._external_finish(generator)

    def _execute_external_batches(
            self, batches: Iterator[RowBatch]) -> Iterator[tuple]:
        """Histogram-filtered external merge sort over batches.

        The arrival-side check (Algorithm 1 line 4) runs once per batch
        against the cutoff current at the batch boundary, as a single
        vectorized comparison.  Rows the cutoff sharpens past *within* a
        batch are still caught by the spill-time re-check (line 11), so
        the output is identical to the row path; only the site where
        such rows are counted as eliminated can shift (arrival → spill).
        """
        stats = self.stats
        sort_key = self.sort_key

        # Buffer exactly one memory-load of rows before starting any
        # spill machinery, mirroring the row path.
        buffered: list[tuple] = []
        leftover: RowBatch | None = None
        leftover_start = 0
        exhausted = False
        while len(buffered) < self.memory_rows:
            batch = next(batches, None)
            if batch is None:
                exhausted = True
                break
            take = min(len(batch.rows), self.memory_rows - len(buffered))
            stats.rows_consumed += take
            if take < len(batch.rows):
                buffered.extend(batch.rows[:take])
                leftover = batch
                leftover_start = take
                break
            buffered.extend(batch.rows)
        if exhausted:
            buffered.sort(key=sort_key)
            yield from buffered[self.offset:self.offset + self.k]
            return

        generator = self._external_machinery()
        with self.tracer.span("topk.run_generation",
                              algorithm=self.run_generation) as span:
            generator.consume_batch(buffered)
            del buffered

            cutoff_filter = self.cutoff_filter
            pending = (((leftover, leftover_start),)
                       if leftover is not None else ())
            stream = itertools.chain(
                pending, ((batch, 0) for batch in batches))
            for batch, start in stream:
                rows = batch.rows
                count = len(rows) - start
                stats.rows_consumed += count
                stats.cutoff_comparisons += count
                keys = self._batch_key_array(batch)
                if keys is None:
                    # Non-vectorizable key: per-row arrival check.  The
                    # keys computed here ride along to the generator.
                    admitted = []
                    admitted_keys = []
                    for row in rows[start:] if start else rows:
                        key = sort_key(row)
                        if cutoff_filter.eliminate(key):
                            stats.rows_eliminated_on_arrival += 1
                        else:
                            admitted.append(row)
                            admitted_keys.append(key)
                    if admitted:
                        generator.consume_batch(admitted, admitted_keys)
                    continue
                if start:
                    rows = rows[start:]
                    keys = keys[start:]
                mask = cutoff_filter.admit_batch(keys)
                if mask is None:
                    generator.consume_batch(rows)
                    continue
                survivors = int(mask.sum())
                stats.rows_eliminated_on_arrival += len(rows) - survivors
                if survivors == len(rows):
                    # Whole batch admitted: hand the list over uncopied.
                    generator.consume_batch(rows)
                elif survivors:
                    generator.consume_batch(
                        [rows[int(i)] for i in np.flatnonzero(mask)])
            if self.tracer.enabled:
                span.set_attribute("rows_consumed", stats.rows_consumed)
                span.set_attribute("rows_eliminated_on_arrival",
                                   stats.rows_eliminated_on_arrival)
        yield from self._external_finish(generator)


def topk(
    rows: Iterable[tuple],
    k: int,
    sort_key: SortSpec | Callable[[tuple], Any],
    memory_rows: int,
    **kwargs,
) -> list[tuple]:
    """One-call convenience wrapper returning the top-k rows as a list."""
    operator = HistogramTopK(sort_key, k, memory_rows, **kwargs)
    return list(operator.execute(rows))
