"""Tests for load-sort-store (quicksort) run generation."""

import pytest

from repro.errors import ConfigurationError
from repro.sorting.quicksort_runs import QuicksortRunGenerator

KEY = lambda row: row[0]  # noqa: E731


class TestBasics:
    def test_rejects_bad_config(self, spill):
        with pytest.raises(ConfigurationError):
            QuicksortRunGenerator(KEY, 0, spill)

    def test_runs_are_memory_sized_loads(self, spill, rng):
        rows = [(rng.random(),) for _ in range(1_000)]
        generator = QuicksortRunGenerator(KEY, 100, spill)
        runs = generator.generate(rows)
        assert len(runs) == 10
        assert all(run.row_count == 100 for run in runs)

    def test_final_partial_load(self, spill, rng):
        rows = [(rng.random(),) for _ in range(250)]
        generator = QuicksortRunGenerator(KEY, 100, spill)
        runs = generator.generate(rows)
        assert [run.row_count for run in runs] == [100, 100, 50]

    def test_runs_sorted_and_complete(self, spill, rng):
        rows = [(rng.random(),) for _ in range(2_345)]
        generator = QuicksortRunGenerator(KEY, 128, spill)
        runs = generator.generate(rows)
        for run in runs:
            keys = [row[0] for row in run.rows()]
            assert keys == sorted(keys)
        recovered = sorted(row for run in runs for row in run.rows())
        assert recovered == sorted(rows)

    def test_empty_input(self, spill):
        assert QuicksortRunGenerator(KEY, 10, spill).generate([]) == []

    def test_resident_rows_tracks_buffer(self, spill):
        generator = QuicksortRunGenerator(KEY, 10, spill)
        generator.consume([(1.0,), (2.0,)])
        assert generator.resident_rows == 2
        generator.finish()
        assert generator.resident_rows == 0


class TestTruncation:
    def test_static_filter_truncates_tail(self, spill):
        rows = [((i % 100) / 100.0,) for i in range(100)]
        generator = QuicksortRunGenerator(
            KEY, 100, spill, spill_filter=lambda key: key > 0.49)
        runs = generator.generate(rows)
        assert len(runs) == 1
        kept = list(runs[0].rows())
        assert kept == sorted(row for row in rows if row[0] <= 0.49)
        assert runs[0].truncated

    def test_truncation_counts_whole_tail(self, spill):
        rows = [(i / 10.0,) for i in range(10)]
        generator = QuicksortRunGenerator(
            KEY, 10, spill, spill_filter=lambda key: key > 0.35)
        generator.generate(rows)
        assert generator._stats.rows_eliminated_at_spill == 6

    def test_filter_sharpened_by_on_spill_truncates_same_run(self, spill):
        # The cutoff drops to 0.3 after the 4th written row: the run must
        # end early even though every row passed the filter on entry.
        state = {"written": 0}

        def filter_(key):
            return state["written"] >= 4 and key > 0.3

        def on_spill(_key, _row):
            state["written"] += 1

        rows = [(i / 10.0,) for i in range(10)]
        generator = QuicksortRunGenerator(
            KEY, 10, spill, spill_filter=filter_, on_spill=on_spill)
        runs = generator.generate(rows)
        assert [row[0] for row in runs[0].rows()] == [0.0, 0.1, 0.2, 0.3]


class TestRunSizeLimit:
    def test_loads_split_at_limit(self, spill, rng):
        rows = [(rng.random(),) for _ in range(300)]
        generator = QuicksortRunGenerator(KEY, 300, spill,
                                          run_size_limit=100)
        runs = generator.generate(rows)
        assert [run.row_count for run in runs] == [100, 100, 100]
        recovered = sorted(row for run in runs for row in run.rows())
        assert recovered == sorted(rows)

    def test_on_run_closed_fires_per_split(self, spill, rng):
        rows = [(rng.random(),) for _ in range(300)]
        closed = []
        generator = QuicksortRunGenerator(
            KEY, 300, spill, run_size_limit=100,
            on_run_closed=lambda run: closed.append(run.row_count))
        generator.generate(rows)
        assert closed == [100, 100, 100]
