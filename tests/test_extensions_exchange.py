"""Tests for the producer/consumer exchange top-k (Section 4.4)."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.extensions.exchange import ExchangeTopK, ProducerNode, \
    ExchangeStats

KEY = lambda row: row[0]  # noqa: E731


def uniform(count, seed=0):
    rng = random.Random(seed)
    return [(rng.random(),) for _ in range(count)]


class TestProducerNode:
    def test_packets_respect_size(self):
        stats = ExchangeStats()
        producer = ProducerNode(0, iter(uniform(100)), KEY, stats)
        packet = producer.produce_packet(32)
        assert len(packet) == 32
        assert stats.rows_shipped == 32
        assert stats.data_packets == 1

    def test_exhaustion_flag(self):
        stats = ExchangeStats()
        producer = ProducerNode(0, iter(uniform(10)), KEY, stats)
        producer.produce_packet(32)
        assert producer.exhausted

    def test_filters_with_received_cutoff(self):
        stats = ExchangeStats()
        rows = [(0.1,), (0.9,), (0.2,), (0.8,)]
        producer = ProducerNode(0, iter(rows), KEY, stats)
        producer.receive_flow_control(0.5)
        packet = producer.produce_packet(10)
        assert packet == [(0.1,), (0.2,)]
        assert stats.rows_filtered_at_producers == 2

    def test_cutoff_only_tightens(self):
        stats = ExchangeStats()
        producer = ProducerNode(0, iter([]), KEY, stats)
        producer.receive_flow_control(0.5)
        producer.receive_flow_control(0.9)  # stale, must be ignored
        assert producer._local_cutoff == 0.5


class TestExchangeTopK:
    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            ExchangeTopK(KEY, 0, 100)
        with pytest.raises(ConfigurationError):
            ExchangeTopK(KEY, 10, 100, producers=0)
        with pytest.raises(ConfigurationError):
            ExchangeTopK(KEY, 10, 100, packet_rows=0)
        with pytest.raises(ConfigurationError):
            ExchangeTopK(KEY, 10, 100, flow_control_interval=0)

    @pytest.mark.parametrize("producers", [1, 3, 5])
    def test_correctness(self, producers):
        rows = uniform(20_000, seed=1)
        operator = ExchangeTopK(KEY, 1_500, 400, producers=producers)
        assert list(operator.execute(iter(rows))) == sorted(rows)[:1_500]

    def test_producers_filter_most_rows(self):
        rows = uniform(40_000, seed=2)
        operator = ExchangeTopK(KEY, 1_000, 400, producers=4)
        list(operator.execute(iter(rows)))
        stats = operator.exchange_stats
        assert stats.rows_filtered_at_producers > 20_000
        assert stats.rows_shipped < 20_000
        assert stats.flow_control_packets > 0

    def test_stale_cutoffs_ship_more_rows(self):
        """The paper's 'lower effectiveness' prediction: longer flow
        control intervals leave producers with staler cutoffs."""
        rows = uniform(40_000, seed=3)
        fresh = ExchangeTopK(KEY, 1_000, 400, producers=4,
                             flow_control_interval=1)
        out_fresh = list(fresh.execute(iter(rows)))
        stale = ExchangeTopK(KEY, 1_000, 400, producers=4,
                             flow_control_interval=20)
        out_stale = list(stale.execute(iter(rows)))
        assert out_fresh == out_stale == sorted(rows)[:1_000]
        assert stale.rows_shipped > fresh.rows_shipped

    def test_shipping_fraction_metric(self):
        rows = uniform(20_000, seed=4)
        operator = ExchangeTopK(KEY, 500, 300, producers=4)
        list(operator.execute(iter(rows)))
        fraction = operator.exchange_stats.shipping_fraction
        assert 0.0 < fraction < 0.6

    def test_small_input_all_shipped(self):
        rows = uniform(50, seed=5)
        operator = ExchangeTopK(KEY, 100, 200, producers=2)
        assert list(operator.execute(iter(rows))) == sorted(rows)
        assert operator.exchange_stats.rows_filtered_at_producers == 0

    def test_consumer_spills_filtered_subset_only(self):
        rows = uniform(40_000, seed=6)
        operator = ExchangeTopK(KEY, 1_000, 400, producers=4)
        list(operator.execute(iter(rows)))
        assert operator.stats.io.rows_spilled < 15_000
