"""A pool of reusable worker sessions over one shared database.

The engine's :class:`~repro.engine.session.Database` is safe to *plan
and execute* from several threads — every query gets private operator
state and a private spill substrate from the planner factory — but the
service still wants a bounded set of long-lived execution contexts: one
per worker thread, each carrying its own accounting (queries served,
cumulative engine stats) and guaranteeing spill-file cleanup after every
query.  That is a :class:`WorkerSession`; the :class:`SessionPool` hands
them out and takes them back.

Sessions are checked out exclusively: a session is used by at most one
query at a time, so its counters need no locks (the pool's queue is the
synchronization point — the per-query-stats-then-merge contract of
:mod:`repro.storage.stats`).
"""

from __future__ import annotations

import queue
from contextlib import contextmanager
from typing import Any

from repro.engine.session import Database, QueryResult, release_plan_storage
from repro.errors import ConfigurationError, ServiceError
from repro.storage.stats import OperatorStats


class WorkerSession:
    """One reusable execution context of the pool."""

    def __init__(self, session_id: int, database: Database):
        self.session_id = session_id
        self.database = database
        self.queries_served = 0
        #: Cumulative engine-side work of every query this session ran.
        #: Written only while the session is checked out (single thread).
        self.stats = OperatorStats()

    def execute(
        self,
        sql_text: str,
        *,
        memory_rows: int | None = None,
        cutoff_seed: Any = None,
        keep_storage: bool = False,
        shards: int | None = None,
    ) -> QueryResult:
        """Run one query, account for it, and release its spill storage.

        The service materializes results, so by default the plan's spill
        files are deleted before returning (``keep_storage=True`` opts
        out, e.g. for callers that want to inspect runs).  Failed
        executions always release storage (``Database.sql`` guarantees
        it).
        """
        result = self.database.sql(sql_text, memory_rows=memory_rows,
                                   cutoff_seed=cutoff_seed, shards=shards)
        self.queries_served += 1
        self.stats.merge(result.stats)
        if not keep_storage:
            release_plan_storage(result.plan)
        return result


class SessionPool:
    """Fixed-size pool of :class:`WorkerSession` objects.

    Args:
        database: The shared database the sessions execute against.
        size: Number of sessions (normally the service's worker count).
    """

    def __init__(self, database: Database, size: int):
        if size <= 0:
            raise ConfigurationError("pool size must be positive")
        self.size = size
        self.sessions = [WorkerSession(i, database) for i in range(size)]
        self._idle: queue.SimpleQueue[WorkerSession] = queue.SimpleQueue()
        for session in self.sessions:
            self._idle.put(session)

    def acquire(self, timeout: float | None = None) -> WorkerSession:
        """Check out an idle session (FIFO), blocking up to ``timeout``."""
        try:
            return self._idle.get(timeout=timeout)
        except queue.Empty:
            raise ServiceError(
                f"no idle session after {timeout}s (pool size "
                f"{self.size})") from None

    def release(self, session: WorkerSession) -> None:
        """Return a session to the pool."""
        self._idle.put(session)

    @contextmanager
    def checkout(self, timeout: float | None = None):
        """``with pool.checkout() as session:`` acquire/release pairing."""
        session = self.acquire(timeout)
        try:
            yield session
        finally:
            self.release(session)

    def total_queries_served(self) -> int:
        """Sum of queries served across all sessions."""
        return sum(session.queries_served for session in self.sessions)
